"""Wall-clock cost of the fleet observability control plane.

Three configurations of the same seeded 2-shard run, all with the span
tracer enabled (the control plane's own baseline): tracing only, a
scoreboard constructed but never sampled ("disabled" — the shipping
default costs nothing because the scoreboard is pull-based), and the
scoreboard + SLO engine sampled on every host slice ("enabled"). The
control plane is passive, so all three must dispatch identical event
schedules; only wall-clock may differ.

A fourth run injects a leader kill to calibrate the SLO verdicts: the
benign run must burn nothing, the kill must burn the availability
budget. Results land under the ``fleet`` key of ``BENCH_PERF.json``.
"""

from __future__ import annotations

import pathlib
import time

from conftest import once, print_table

from repro.core.config import SmartScadaConfig
from repro.core.system import make_network
from repro.neoscada import HandlerChain, Monitor
from repro.net.faults import Drop
from repro.obs.fleet import FleetScoreboard
from repro.obs.slo import SloEngine
from repro.obs.trace import install_tracer
from repro.shard import ShardedScadaConfig, build_sharded_scada
from repro.sim import Simulator

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PERF.json"

DURATION = 4.0
INTERVAL = 0.25
SENSORS = [f"plant.s{i}" for i in range(6)]

#: Generous regression guards (CI boxes are noisy): the ISSUE targets
#: are enabled <= 1.15x and disabled <= 1.01x over tracing-only; the
#: recorded ratios stay honest while the asserts leave headroom.
MAX_ENABLED_OVERHEAD = 2.0
MAX_DISABLED_OVERHEAD = 1.5


def run_fleet(mode: str, kill: bool = False) -> dict:
    """One seeded 2-shard run; ``mode`` is tracing/disabled/enabled."""
    sim = Simulator(seed=7)
    install_tracer(sim)
    net = make_network(sim)
    base = SmartScadaConfig(
        request_timeout=1.0,
        sync_timeout=2.0,
        invoke_timeout=0.5,
        logical_timeout=0.8,
    )
    system = build_sharded_scada(
        sim, net=net, config=ShardedScadaConfig(shards=2, base=base)
    )
    for sensor in SENSORS:
        system.frontend.add_item(sensor, initial=20)
        system.attach_handlers(
            sensor, lambda: HandlerChain([Monitor(high=80.0)])
        )
    system.frontend.add_item("plant.actuator", initial=0, writable=True)
    system.start()
    for client in list(system.proxy_hmi.bft_clients) + [
        c for pf in system.proxy_frontends for c in pf.bft_clients
    ]:
        client.max_attempts = 1000
    for pm in system.proxy_masters:
        pm.vote_client.max_attempts = 1000

    scoreboard = None
    if mode != "tracing":
        scoreboard = FleetScoreboard(system, slo_engine=SloEngine(sim=sim))

    def updates():
        step = 0
        while sim.now < DURATION:
            yield sim.timeout(0.1)
            step += 1
            for i, sensor in enumerate(SENSORS):
                value = 90 if (step + i) % 8 == 0 else 30
                system.frontend.inject_update(sensor, value)

    def writes():
        number = 0
        while sim.now < DURATION:
            yield sim.timeout(0.4)
            number += 1
            event = system.hmi.write("plant.actuator", number)
            event.add_callback(lambda ev: setattr(ev, "defused", True))

    sim.process(updates())
    sim.process(writes())

    if kill:
        state = {"rules": [], "target": None}

        def crash() -> None:
            leader = system.group(0)[0].replica.leader
            state["target"] = leader
            for addr in (leader, f"{leader}-adapter"):
                net.crash(addr)
                state["rules"].append(net.faults.add(Drop(src=addr)))

        def recover() -> None:
            for addr in (state["target"], f"{state['target']}-adapter"):
                net.recover(addr)
            for rule in state["rules"]:
                if rule in net.faults.rules:
                    net.faults.remove(rule)

        sim.defer(DURATION / 3.0, crash)
        sim.defer(2.0 * DURATION / 3.0, recover)

    # The kill run samples past the horizon so the availability window
    # drains and the fleet can be seen green again.
    horizon = DURATION + (3.0 if kill else 0.0)
    start = time.perf_counter()
    while sim.now < horizon:
        sim.run(until=min(sim.now + INTERVAL, horizon))
        if mode == "enabled":
            scoreboard.sample()
    wall = time.perf_counter() - start
    system.flush_events()

    engine = scoreboard.slo_engine if scoreboard is not None else None
    return {
        "wall_s": round(wall, 4),
        "events_dispatched": sim.dispatched,
        "alarms": len(system.hmi.alarms()),
        "samples": len(scoreboard.samples) if scoreboard is not None else 0,
        "slo_violations": (
            [v.as_dict() for v in engine.violations]
            if engine is not None
            else []
        ),
        "status": (
            scoreboard.latest.status
            if scoreboard is not None and scoreboard.latest is not None
            else None
        ),
    }


def best_of(mode: str, kill: bool = False, rounds: int = 3) -> dict:
    """Min-wall of ``rounds`` identical deterministic runs (noise guard)."""
    results = [run_fleet(mode, kill=kill) for _ in range(rounds)]
    return min(results, key=lambda result: result["wall_s"])


def measure() -> dict:
    tracing = best_of("tracing")
    disabled = best_of("disabled")
    enabled = best_of("enabled")
    killed = best_of("enabled", kill=True)
    return {
        "pipeline": "sharded_scada",
        "shards": 2,
        "duration_s": DURATION,
        "sample_interval_s": INTERVAL,
        "tracing": tracing,
        "disabled": disabled,
        "enabled": enabled,
        "leader_kill": killed,
        "overhead_disabled": round(disabled["wall_s"] / tracing["wall_s"], 3),
        "overhead_enabled": round(enabled["wall_s"] / tracing["wall_s"], 3),
        "identical_schedules": (
            tracing["events_dispatched"]
            == disabled["events_dispatched"]
            == enabled["events_dispatched"]
        ),
    }


def test_fleet_overhead_and_slo_verdicts(benchmark):
    report = once(benchmark, measure)

    from repro.workloads.profiler import write_report

    write_report({"fleet": report}, str(REPORT_PATH))

    print_table(
        "fleet control plane overhead — 2-shard wall-clock seconds",
        ["mode", "wall_s", "events", "samples", "violations"],
        [
            [
                mode,
                report[mode]["wall_s"],
                report[mode]["events_dispatched"],
                report[mode]["samples"],
                len(report[mode]["slo_violations"]),
            ]
            for mode in ("tracing", "disabled", "enabled", "leader_kill")
        ],
    )

    # Passivity: the control plane never changed the schedule.
    assert report["identical_schedules"], report
    assert report["enabled"]["samples"] > 0
    assert report["enabled"]["alarms"] > 0

    # SLO calibration: benign burns nothing, the leader kill burns the
    # availability budget (and the fleet ends green again).
    assert report["enabled"]["slo_violations"] == []
    killed = report["leader_kill"]
    burned = {v["slo"] for v in killed["slo_violations"]}
    assert "shard-availability" in burned, killed
    assert killed["status"] == "ok", killed

    # Cost envelope (generous: regression guard, not marketing).
    assert report["overhead_disabled"] < MAX_DISABLED_OVERHEAD, report
    assert report["overhead_enabled"] < MAX_ENABLED_OVERHEAD, report
