"""Wall-clock cost of span tracing on the §V-B microbenchmark pipeline.

Three configurations of the same seeded run: no tracer installed
(baseline), a tracer installed but disabled (the shipping default — the
hooks reduce to one attribute read and a ``None``/flag check), and a
tracer enabled (full span trees for every request). Tracing is
behaviour-invisible, so all three must execute identical request
streams and dispatch identical event counts; only wall-clock may
differ. Results land under the ``observability`` key of
``BENCH_PERF.json``.
"""

from __future__ import annotations

import pathlib
import time

from conftest import once, print_table

from repro.bftsmart import EchoService, GroupConfig, build_group, build_proxy
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network
from repro.obs.trace import install_tracer
from repro.sim import Simulator
from repro.workloads.metrics import ThroughputMeter
from repro.workloads.profiler import write_report

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PERF.json"

OFFERED_RATE = 25_000.0
WARMUP = 0.2
WINDOW = 0.6

#: Enabled tracing allocates a span per protocol step, so it is allowed
#: to cost real time — but not an order of magnitude. Generous bound:
#: CI boxes are noisy and this guards regressions, not marketing.
MAX_TRACED_OVERHEAD = 3.0


def run_micro(mode: str) -> dict:
    """One seeded bft-micro run; ``mode`` is untraced/disabled/enabled."""
    payload = bytes(1024)
    sim = Simulator(seed=1)
    tracer = None
    if mode != "untraced":
        tracer = install_tracer(sim)
        tracer.enabled = mode == "enabled"
    net = Network(sim, latency=ConstantLatency(0.00025))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, batch_max=500, batch_wait=0.001)
    replicas = build_group(sim, net, config, EchoService, keystore)
    proxy = build_proxy(
        sim, net, "load-client", config, keystore, invoke_timeout=5.0
    )

    def firehose():
        interval = 1.0 / OFFERED_RATE
        while True:
            event = proxy.invoke_ordered(payload)
            event.add_callback(lambda ev: setattr(ev, "defused", True))
            yield sim.timeout(interval)

    sim.process(firehose())
    meter = ThroughputMeter(sim, lambda: replicas[0].stats["executed"])
    start = time.perf_counter()
    sim.run(until=WARMUP)
    meter.open_window()
    sim.run(until=WARMUP + WINDOW)
    meter.close_window()
    wall = time.perf_counter() - start
    return {
        "wall_s": round(wall, 4),
        "executed": replicas[0].stats["executed"],
        "events_dispatched": sim.dispatched,
        "spans": len(tracer.spans) if tracer is not None else 0,
    }


def measure() -> dict:
    untraced = run_micro("untraced")
    disabled = run_micro("disabled")
    enabled = run_micro("enabled")
    return {
        "pipeline": "bft_micro",
        "offered_rate": OFFERED_RATE,
        "window_s": WINDOW,
        "untraced": untraced,
        "disabled": disabled,
        "enabled": enabled,
        "overhead_disabled": round(disabled["wall_s"] / untraced["wall_s"], 3),
        "overhead_enabled": round(enabled["wall_s"] / untraced["wall_s"], 3),
        "identical_results": (
            untraced["executed"]
            == disabled["executed"]
            == enabled["executed"]
            and untraced["events_dispatched"]
            == disabled["events_dispatched"]
            == enabled["events_dispatched"]
        ),
    }


def test_tracing_overhead(benchmark):
    report = once(benchmark, measure)
    write_report({"observability": report}, str(REPORT_PATH))

    print_table(
        "span tracing overhead — bft_micro wall-clock seconds",
        ["mode", "wall_s", "executed", "events", "spans"],
        [
            [
                mode,
                report[mode]["wall_s"],
                report[mode]["executed"],
                report[mode]["events_dispatched"],
                report[mode]["spans"],
            ]
            for mode in ("untraced", "disabled", "enabled")
        ],
    )

    # Behaviour invisibility: same work happened in all three modes.
    assert report["identical_results"], report
    assert report["enabled"]["spans"] > 0
    assert report["disabled"]["spans"] == 0

    # Cost envelope: a disabled tracer is within noise of no tracer at
    # all; an enabled tracer may cost real time but stays bounded.
    assert report["overhead_disabled"] < 1.5, report["overhead_disabled"]
    assert report["overhead_enabled"] < MAX_TRACED_OVERHEAD, (
        report["overhead_enabled"]
    )
