"""Ablation: horizontal sharding — aggregate throughput vs shard count.

One replicated Master tops out at its execution ceiling no matter how
deep the consensus pipeline goes: the cost model charges
``update_processing + serialization`` (~1.06 ms) per update on the
single-threaded deterministic Master, so a group saturates near
940 updates/s — the regime behind the paper's Figure 8(a). Sharding is
the only remaining axis: N independent BFT groups each bring their own
leader, pipeline and Master, so the aggregate ceiling should scale with
N while the item namespace, the client API and the global AE order stay
exactly as they were.

The sweep offers each group ~1.25x its own ceiling (so every group is
saturated, not load-starved) and measures updates *delivered to the
HMI* — the end of the full pipeline: routing, per-group consensus,
replicated execution, f+1-voted pushes and the global merge. Both event
kernels (heap and ring) run the same sweep; the scaling claim must hold
on either.

Results land in ``BENCH_SCALE.json``.
"""

import pathlib

from conftest import once, print_table

from repro.core import SmartScadaConfig
from repro.shard import ShardedScadaConfig, build_sharded_scada
from repro.sim import Simulator
from repro.workloads import ThroughputMeter, write_report

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_SCALE.json"

SHARD_COUNTS = (1, 2, 4)
KERNELS = ("heap", "ring")

#: Offered load per group: ~1.25x the single-Master execution ceiling
#: (~940 updates/s from the §VII-b cost model), so each group is the
#: bottleneck and delivered throughput measures capacity, not load.
PER_SHARD_OFFERED = 1200.0
#: Items routed to each group (the namespace spans all groups).
ITEMS_PER_SHARD = 8
WARMUP = 0.5
WINDOW = 1.5
#: Large enough that a saturated group's queue never triggers client
#: retransmissions (which would melt a deliberately overloaded sweep).
INVOKE_TIMEOUT = 30.0


def run_point(shards: int, kernel: str) -> dict:
    sim = Simulator(seed=1, kernel=kernel)
    config = ShardedScadaConfig(
        shards=shards,
        base=SmartScadaConfig(invoke_timeout=INVOKE_TIMEOUT),
    )
    system = build_sharded_scada(sim, config=config)

    # Balance the workload exactly: ITEMS_PER_SHARD items per group,
    # chosen from a larger candidate pool by the deployment's own map.
    per_shard: dict = {s: [] for s in range(shards)}
    chosen = []
    for i in range(200):
        item = f"bench.item-{i}"
        shard = system.shard_of(item)
        if len(per_shard[shard]) < ITEMS_PER_SHARD:
            per_shard[shard].append(item)
            chosen.append(item)
    assert all(len(owned) == ITEMS_PER_SHARD for owned in per_shard.values())
    for item in chosen:
        system.frontend.add_item(item, initial=0)
    system.start()

    offered = PER_SHARD_OFFERED * shards

    def firehose():
        interval = 1.0 / offered
        i = 0
        while True:
            system.frontend.inject_update(chosen[i % len(chosen)], i)
            i += 1
            yield sim.timeout(interval)

    sim.process(firehose(), name="firehose")
    meter = ThroughputMeter(sim, lambda: system.hmi.stats["updates"])
    sim.run(until=WARMUP)
    meter.open_window()
    sim.run(until=WARMUP + WINDOW)
    meter.close_window()

    per_group_executed = [
        system.group(s)[0].master.stats["updates"] for s in range(shards)
    ]
    return {
        "offered": offered,
        "delivered": meter.rate,
        "per_group_executed": per_group_executed,
        "items": len(chosen),
    }


def test_shard_scaling(benchmark):
    def sweep():
        return {
            kernel: {shards: run_point(shards, kernel) for shards in SHARD_COUNTS}
            for kernel in KERNELS
        }

    results = once(benchmark, sweep)

    for kernel in KERNELS:
        points = results[kernel]
        base = points[1]["delivered"]
        print_table(
            f"Ablation — shard scaling ({kernel} kernel, offered "
            f"{PER_SHARD_OFFERED:.0f}/s per group, Fig 8(a)-style updates)",
            ["shards", "offered (ops/s)", "delivered (ops/s)", "vs 1 shard"],
            [
                [
                    str(shards),
                    f"{p['offered']:.0f}",
                    f"{p['delivered']:.0f}",
                    f"{p['delivered'] / base:.2f}x",
                ]
                for shards, p in points.items()
            ],
        )

    write_report(
        {
            "shard_scale": {
                "description": (
                    "Aggregate delivered updates/s (HMI-side, full "
                    "pipeline) vs shard count. Each group is offered "
                    "~1.25x the single-Master execution ceiling so the "
                    "sweep measures capacity. 1 shard is the classic "
                    "Figure 8(a) deployment; N shards are N independent "
                    "BFT groups behind the same namespace and proxies."
                ),
                "offered_per_shard": PER_SHARD_OFFERED,
                "items_per_shard": ITEMS_PER_SHARD,
                "warmup_s": WARMUP,
                "window_s": WINDOW,
                "kernels": {
                    kernel: {
                        "points": {
                            str(shards): p for shards, p in results[kernel].items()
                        },
                        "speedup_2": (
                            results[kernel][2]["delivered"]
                            / results[kernel][1]["delivered"]
                        ),
                        "speedup_4": (
                            results[kernel][4]["delivered"]
                            / results[kernel][1]["delivered"]
                        ),
                    }
                    for kernel in KERNELS
                },
            }
        },
        str(REPORT_PATH),
    )

    for kernel in KERNELS:
        points = results[kernel]
        base = points[1]["delivered"]
        # The 1-shard baseline really is execution-bound, not offered-
        # bound: it delivers well under the offered load.
        assert base < 0.9 * points[1]["offered"], kernel
        # The scaling claims: near-linear aggregate capacity.
        assert points[2]["delivered"] >= 1.7 * base, kernel
        assert points[4]["delivered"] >= 3.0 * base, kernel
        # Every group carried real load (the partition balanced).
        for shards in SHARD_COUNTS:
            executed = points[shards]["per_group_executed"]
            assert min(executed) > 0.5 * max(executed), (kernel, shards)
