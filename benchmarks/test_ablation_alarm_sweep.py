"""Ablation: fine-grained alarm-ratio sweep (extends Figure 8b).

The paper samples the alarm ratio at 0%, 50% and 100%; this sweep fills
the curve in and shows the two regimes: a gentle linear region (event
routing cost) and the storage-saturated region where throughput pins to
the storage writer's service rate.
"""

from conftest import once, print_table

from repro.workloads import run_update_experiment

OFFERED = 1000.0
RATIOS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_alarm_ratio_sweep(benchmark):
    results = once(
        benchmark,
        lambda: {
            ratio: run_update_experiment(
                "smartscada",
                rate=OFFERED,
                alarm_ratio=ratio,
                duration=2.0,
                warmup=0.5,
            )
            for ratio in RATIOS
        },
    )
    print_table(
        "Ablation — alarm ratio sweep (SMaRt-SCADA, offered 1000/s)",
        ["alarm ratio", "throughput (ops/s)", "events/s", "drop"],
        [
            [
                f"{ratio:.0%}",
                f"{res.throughput:.0f}",
                f"{res.details['event_rate']:.0f}",
                f"{1 - res.throughput / OFFERED:.1%}",
            ]
            for ratio, res in results.items()
        ],
    )
    throughputs = [results[r].throughput for r in RATIOS]
    # Monotonically non-increasing in the alarm ratio.
    for earlier, later in zip(throughputs, throughputs[1:]):
        assert later <= earlier * 1.02
    # The saturated end pins near the storage service rate (~750/s).
    assert 650 <= throughputs[-1] <= 820
