"""Figure 8(b): Update-value use case with the AE subsystem (alarms).

Paper setup: the Monitor handler raises an alarm on 50% / 100% of the
1000 updates/s; each alarm is persisted to storage and pushed to the HMI
over AE. NeoSCADA still processes everything; SMaRt-SCADA loses 10%
(50% alarms) and 25% (100% alarms) — and the 100% case loses
disproportionally more because the event storage path saturates ("the
number of events that go to storage is twice what was observed").
"""

import pytest
from conftest import once, print_table

from repro.workloads import run_update_experiment

OFFERED = 1000.0
DURATION = 3.0
WARMUP = 0.5


def run_point(system, ratio):
    return run_update_experiment(
        system,
        rate=OFFERED,
        alarm_ratio=ratio,
        duration=DURATION,
        warmup=WARMUP,
    )


def test_fig8b_neoscada_alarms(benchmark):
    results = once(
        benchmark, lambda: [run_point("neoscada", r) for r in (0.5, 1.0)]
    )
    print_table(
        "Figure 8(b) — alarms, NeoSCADA",
        ["alarm ratio", "measured (ops/s)", "paper"],
        [
            [f"{ratio:.0%}", f"{res.throughput:.0f}", "~1000 (all processed)"]
            for ratio, res in zip((0.5, 1.0), results)
        ],
    )
    for result in results:
        assert result.throughput >= OFFERED * 0.98


def test_fig8b_smartscada_50pct_alarms(benchmark):
    result = once(benchmark, lambda: run_point("smartscada", 0.5))
    drop = 1.0 - result.throughput / OFFERED
    print_table(
        "Figure 8(b) — 50% alarms, SMaRt-SCADA",
        ["measured (ops/s)", "events/s", "drop", "paper drop"],
        [
            [
                f"{result.throughput:.0f}",
                f"{result.details['event_rate']:.0f}",
                f"{drop:.1%}",
                "~10%",
            ]
        ],
    )
    assert 0.05 <= drop <= 0.16
    # Half the delivered updates alarmed.
    assert result.details["event_rate"] / result.throughput == pytest.approx(
        0.5, rel=0.1
    )


def test_fig8b_smartscada_100pct_alarms(benchmark):
    result = once(benchmark, lambda: run_point("smartscada", 1.0))
    drop = 1.0 - result.throughput / OFFERED
    print_table(
        "Figure 8(b) — 100% alarms, SMaRt-SCADA",
        ["measured (ops/s)", "events/s", "drop", "paper drop"],
        [
            [
                f"{result.throughput:.0f}",
                f"{result.details['event_rate']:.0f}",
                f"{drop:.1%}",
                "~25%",
            ]
        ],
    )
    assert 0.18 <= drop <= 0.32


def test_fig8b_overhead_ordering(benchmark):
    """The panel's defining shape: 0% < 50% < 100% overhead, and the
    100% overhead is disproportionally (not just 2x) larger."""
    results = once(
        benchmark,
        lambda: {
            ratio: run_point("smartscada", ratio) for ratio in (0.0, 0.5, 1.0)
        },
    )
    drops = {
        ratio: 1.0 - res.throughput / OFFERED for ratio, res in results.items()
    }
    print_table(
        "Figure 8(b) — overhead ordering, SMaRt-SCADA",
        ["alarm ratio", "drop"],
        [[f"{ratio:.0%}", f"{drop:.1%}"] for ratio, drop in sorted(drops.items())],
    )
    assert drops[0.0] < drops[0.5] < drops[1.0]
    assert drops[1.0] > 2 * drops[0.5] * 0.9  # superlinear-ish growth
