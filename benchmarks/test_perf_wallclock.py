"""Wall-clock measurement of the hot-path performance pass.

Runs the §V-B microbenchmark and the Figure 8(a) pipeline twice in one
process — all optimisation switches off (legacy code paths) vs on — and
writes the before/after numbers to ``BENCH_PERF.json`` at the repository
root. The profiler itself asserts the two phases produce identical
simulation results, so this file's assertions are about the *point* of
the pass: the optimised pipelines must be meaningfully faster, and the
load-bearing caches must actually be hitting.

The in-process comparison understates the full PR speedup: the kernel
improvements (slotted events, tuple-keyed heap, lazy timer cancellation)
are structural and speed the "baseline" up too. Against the pre-PR tree
the microbenchmark measured >2x; see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import pathlib

from conftest import once, print_table

from repro.workloads.profiler import profile_hot_paths, summary_rows, write_report

REPORT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_PERF.json"

#: Conservative floor for the switchable optimisations alone (measured
#: ~1.8x for bft_micro on an idle machine; CI boxes are noisy).
MIN_SPEEDUP = 1.3


def test_hot_path_speedup(benchmark):
    report = once(benchmark, profile_hot_paths)
    write_report(report, str(REPORT_PATH))

    print_table(
        "hot-path performance pass — wall-clock seconds",
        ["pipeline", "baseline", "optimized", "speedup", "identical results"],
        summary_rows(report),
    )

    micro = report["pipelines"]["bft_micro"]
    assert micro["results_equal"]
    assert micro["speedup"] >= MIN_SPEEDUP, (
        f"bft_micro speedup {micro['speedup']:.2f}x below {MIN_SPEEDUP}x"
    )
    fig8a = report["pipelines"]["fig8a_update"]
    assert fig8a["results_equal"]

    # The caches that carry the speedup must be doing real work. (The
    # codec encode memo is not asserted on: without retransmissions every
    # message object is sealed exactly once, and its payoff is the shared
    # payload bytes object that the other caches key on.)
    caches = micro["optimized"]["cache_stats"]
    assert caches["decode_share"]["hit_rate"] > 0.9, caches["decode_share"]
    assert caches["mac"]["hits"] > 0, caches["mac"]
    assert caches["signing_payload"]["hits"] > 0, caches["signing_payload"]
    assert caches["digest"]["hit_rate"] > 0.5, caches["digest"]

    # The kernel's lazy timer cancellation keeps the heap bounded: the
    # client cancels one retransmission timer per completed invocation.
    kernel = micro["optimized"]["kernel"]
    assert kernel["timers_cancelled"] > 0
    assert kernel["heap_peak"] < kernel["events_dispatched"]
