"""§IV-D: liveness of the write path under message-dropping attacks.

"This way, we can ensure the liveness of the SCADA Master even if an
attacker drops WriteValue or WriteResult messages." The bench measures
how long a write stays blocked before the logical-timeout protocol
answers it, for both attack directions and a sweep of timeout settings.
"""

from conftest import once, print_table

from repro.core import SmartScadaConfig, build_smartscada
from repro.net import Drop
from repro.sim import Simulator


def run_attacked_write(drop_kind, direction, logical_timeout=1.0):
    sim = Simulator(seed=1)
    config = SmartScadaConfig(logical_timeout=logical_timeout)
    system = build_smartscada(sim, config=config)
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()
    if direction == "to_frontend":
        system.net.faults.add(Drop(dst="frontend-0", kind=drop_kind))
    else:
        system.net.faults.add(Drop(src="frontend-0", kind=drop_kind))

    def operator():
        started = sim.now
        result = yield system.hmi.write("actuator", 1)
        return (result, sim.now - started)

    result, latency = sim.run_process(operator(), until=sim.now + 60)
    sim.run(until=sim.now + 0.5)
    digests_equal = len(set(system.state_digests())) == 1
    return result, latency, digests_equal


def test_logical_timeout_bounds_blocked_writes(benchmark):
    scenarios = once(
        benchmark,
        lambda: {
            "drop WriteValue → Frontend": run_attacked_write(
                "WriteValue", "to_frontend"
            ),
            "drop WriteResult ← Frontend": run_attacked_write(
                "WriteResult", "from_frontend"
            ),
        },
    )
    rows = []
    for name, (result, latency, digests_equal) in scenarios.items():
        rows.append(
            [name, "unblocked" if not result.success else "??", f"{latency:.3f}s",
             "yes" if digests_equal else "NO"]
        )
    print_table(
        "§IV-D — logical timeout liveness (timeout = 1s)",
        ["attack", "outcome", "blocked for", "replicas consistent"],
        rows,
    )
    for _name, (result, latency, digests_equal) in scenarios.items():
        assert not result.success
        assert "logical timeout" in result.reason
        # Bounded: timeout + one agreement round-trip, with margin.
        assert latency < 1.0 + 1.0
        assert digests_equal


def test_logical_timeout_scales_with_setting(benchmark):
    results = once(
        benchmark,
        lambda: {
            timeout: run_attacked_write("WriteValue", "to_frontend", timeout)
            for timeout in (0.5, 1.0, 2.0)
        },
    )
    print_table(
        "§IV-D — blocked time vs. configured logical timeout",
        ["timeout (s)", "blocked for (s)"],
        [[f"{t}", f"{latency:.3f}"] for t, (_r, latency, _d) in results.items()],
    )
    latencies = [latency for _r, latency, _d in results.values()]
    assert latencies == sorted(latencies)
    for timeout, (_result, latency, _digests) in results.items():
        assert timeout <= latency <= timeout + 1.0
