"""Ablation: the cost of tolerating more faults (f = 1 vs f = 2).

The paper evaluates n = 4, f = 1 only; this ablation re-runs both
workloads with n = 7, f = 2 to show where the replication degree bites:
update throughput is barely affected (the serial Master, not agreement,
is the bottleneck — consistent with §V-B), while write latency grows
with the larger quorums.
"""

from conftest import once, print_table

from repro.core import SmartScadaConfig, build_smartscada
from repro.sim import Simulator
from repro.workloads import ThroughputMeter, UpdateWorkload, WriteWorkload


def run_point(n, f):
    sim = Simulator(seed=1)
    config = SmartScadaConfig(n=n, f=f)
    system = build_smartscada(sim, config=config)
    item_ids = [f"sensor-{i}" for i in range(10)]
    for item_id in item_ids:
        system.frontend.add_item(item_id, initial=0)
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()

    updates = UpdateWorkload(sim, system.frontend, item_ids, rate=1000.0)
    meter = ThroughputMeter(sim, lambda: system.hmi.stats["updates"])
    updates.start(duration=2.5)
    sim.run(until=sim.now + 0.5)
    meter.open_window()
    sim.run(until=sim.now + 2.0)
    meter.close_window()
    updates.stop()
    sim.run(until=sim.now + 1.0)

    writes = WriteWorkload(sim, system.hmi, "actuator")
    writes.start(duration=1.5)
    sim.run(stop_on=writes.done, until=sim.now + 30)
    return meter.rate, writes.latencies.mean


def test_fault_threshold_ablation(benchmark):
    results = once(
        benchmark, lambda: {(4, 1): run_point(4, 1), (7, 2): run_point(7, 2)}
    )
    rows = [
        [f"n={n}, f={f}", f"{rate:.0f}", f"{latency * 1000:.2f}"]
        for (n, f), (rate, latency) in results.items()
    ]
    print_table(
        "Ablation — replication degree",
        ["group", "update throughput (ops/s)", "write latency (ms)"],
        rows,
    )
    (rate4, lat4), (rate7, lat7) = results[(4, 1)], results[(7, 2)]
    # Update throughput is bottlenecked by the serial Master: growing the
    # group costs little (< 10%).
    assert rate7 >= rate4 * 0.90
    # Write latency grows with the quorum sizes, but moderately.
    assert lat7 >= lat4 * 0.95
    assert lat7 <= lat4 * 2.0
