"""Ablation: "the cost of transparent solutions" (§VII-c).

The paper concludes that the proxy-based, modification-minimizing
integration — not the BFT library — causes the performance loss, via the
serialization done to funnel everything through one entry point. This
ablation turns the serialization cost off (imagining a deep integration
that shares in-memory structures) and re-measures: the gap to NeoSCADA
should mostly close for updates, confirming §VII-b's diagnosis.
"""

import dataclasses

from conftest import once, print_table

from repro.core import SmartScadaConfig, smartscada_costs
from repro.core.system import build_smartscada
from repro.sim import Simulator
from repro.workloads import ThroughputMeter, UpdateWorkload

OFFERED = 1000.0


def run_point(serialization: float):
    costs = dataclasses.replace(smartscada_costs(), serialization=serialization)
    config = SmartScadaConfig(costs=costs)
    sim = Simulator(seed=1)
    system = build_smartscada(sim, config=config)
    item_ids = [f"sensor-{i}" for i in range(10)]
    for item_id in item_ids:
        system.frontend.add_item(item_id, initial=0)
    system.start()
    workload = UpdateWorkload(sim, system.frontend, item_ids, rate=OFFERED)
    meter = ThroughputMeter(sim, lambda: system.hmi.stats["updates"])
    workload.start(duration=3.0)
    sim.run(until=sim.now + 0.5)
    meter.open_window()
    sim.run(until=sim.now + 2.5)
    meter.close_window()
    return meter.rate


def test_transparency_cost_ablation(benchmark):
    calibrated = smartscada_costs().serialization
    results = once(
        benchmark,
        lambda: {
            "proxy integration (calibrated)": run_point(calibrated),
            "half the marshalling": run_point(calibrated / 2),
            "deep integration (no marshalling)": run_point(0.0),
        },
    )
    print_table(
        "Ablation — §VII-c the cost of transparent solutions",
        ["integration style", "update throughput (ops/s)", "drop vs offered"],
        [
            [name, f"{rate:.0f}", f"{1 - rate / OFFERED:.1%}"]
            for name, rate in results.items()
        ],
    )
    proxy = results["proxy integration (calibrated)"]
    deep = results["deep integration (no marshalling)"]
    # Removing the single-entry-point marshalling recovers (nearly) the
    # whole Figure 8(a) gap: the BFT machinery itself is almost free.
    assert deep > proxy
    assert deep >= OFFERED * 0.98
