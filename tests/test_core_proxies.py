"""Focused unit tests for ProxyHMI and ProxyFrontend behaviour."""

import pytest

from repro.core import build_smartscada
from repro.neoscada.messages import (
    BrowseReply,
    BrowseRequest,
    ItemUpdate,
    WriteResult,
    WriteValue,
)
from repro.sim import Simulator


def build(seed=1):
    sim = Simulator(seed=seed)
    system = build_smartscada(sim)
    system.frontend.add_item("sensor", initial=0)
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()
    return sim, system


def test_proxy_hmi_rewrites_write_reply_path():
    sim, system = build()

    def operator():
        result = yield system.hmi.write("actuator", 3)
        return result

    result = sim.run_process(operator(), until=sim.now + 10)
    assert result.success
    # The HMI's original op id came back to the HMI even though the
    # Master only ever talked to the proxy.
    assert system.proxy_hmi.stats["forwarded_writes"] == 1
    assert system.proxy_hmi.stats["write_results_out"] == 1
    assert not system.proxy_hmi._write_origins  # correlation cleaned up


def test_proxy_hmi_browse_round_trip():
    sim, system = build()
    replies = []
    requester = system.net.endpoint("operator-console")
    requester.set_handler(lambda message, src: replies.append(message))
    requester.send("proxy-hmi", BrowseRequest(reply_to="operator-console"))
    sim.run(until=sim.now + 2)
    assert len(replies) == 1
    assert isinstance(replies[0], BrowseReply)
    assert ("actuator", True) in replies[0].items


def test_proxy_hmi_counts_invoke_failures():
    sim, system = build()
    system.proxy_hmi.bft.max_attempts = 2
    system.proxy_hmi.bft.invoke_timeout = 0.1
    for address in ("replica-0", "replica-1", "replica-2", "replica-3"):
        system.net.crash(address)
    system.frontend.inject_update("sensor", 1)  # goes nowhere
    event = system.hmi.write("actuator", 1)
    event.defused = True
    sim.run(until=sim.now + 5)
    assert system.proxy_hmi.stats["invoke_failures"] >= 1


def test_proxy_frontend_forwards_updates_and_results_only():
    sim, system = build()
    proxy = system.proxy_frontends[0]
    before = proxy.stats["updates_in"]
    system.frontend.inject_update("sensor", 5)
    sim.run(until=sim.now + 0.5)
    assert proxy.stats["updates_in"] == before + 1
    # Pushed WriteValues get rewritten towards the frontend.
    def operator():
        result = yield system.hmi.write("actuator", 2)
        return result

    result = sim.run_process(operator(), until=sim.now + 10)
    assert result.success
    assert proxy.stats["writes_out"] == 1
    assert proxy.stats["write_results_in"] == 1


def test_proxy_frontend_ignores_unrelated_local_traffic():
    sim, system = build()
    proxy = system.proxy_frontends[0]
    stats_before = dict(proxy.stats)
    system.net.endpoint("stranger").send(
        proxy.address, BrowseRequest(reply_to="stranger")
    )
    sim.run(until=sim.now + 0.5)
    assert proxy.stats == stats_before


def test_duplicate_pushes_do_not_duplicate_hmi_updates():
    sim, system = build()
    from repro.net import Duplicate

    system.net.faults.add(Duplicate(copies=2, kind="PushMessage"))
    baseline = system.hmi.stats["updates"]  # initial item sync
    system.frontend.inject_update("sensor", 9)
    sim.run(until=sim.now + 1)
    assert system.hmi.stats["updates"] == baseline + 1
    assert system.hmi.value_of("sensor") == 9


def test_hmi_write_result_arrives_exactly_once():
    sim, system = build()
    from repro.net import Duplicate

    system.net.faults.add(Duplicate(copies=1, kind="PushMessage"))
    results = []

    def operator():
        result = yield system.hmi.write("actuator", 7)
        results.append(result)
        yield sim.timeout(1.0)
        return True

    sim.run_process(operator(), until=sim.now + 15)
    assert len(results) == 1
    assert results[0].success
