"""Network partitions: safety under splits, liveness after healing."""

import pytest

from repro.bftsmart import CounterService, GroupConfig, build_group, build_proxy
from repro.core import SmartScadaConfig, build_smartscada
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network, Partition
from repro.sim import Simulator
from repro.wire import decode, encode


def test_even_split_halts_no_split_brain():
    """2-2 split of n=4: neither side has a quorum; the counter must not
    advance on either side (no split brain), and heal restores liveness."""
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.0004))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, request_timeout=0.5, sync_timeout=1.0)
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore, invoke_timeout=1.0)
    proxy.max_attempts = 60  # keep retransmitting across the partition

    rule = net.faults.add(
        Partition([["replica-0", "replica-1"], ["replica-2", "replica-3"]])
    )
    event = proxy.invoke_ordered(encode(("add", 1)))
    event.defused = True
    sim.run(until=sim.now + 5)
    assert all(r.service.value == 0 for r in replicas), "split brain!"
    assert not event.triggered

    rule.heal()
    sim.run(until=sim.now + 30, stop_on=event)
    assert event.ok and decode(event.value) == 1
    sim.run(until=sim.now + 2)
    assert all(r.service.value == 1 for r in replicas)


def test_minority_partition_catches_up_after_heal():
    """3-1 split: the majority side keeps working; the isolated replica
    rejoins via buffering/state transfer once healed."""
    sim = Simulator(seed=2)
    net = Network(sim, latency=ConstantLatency(0.0004))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, request_timeout=0.5, sync_timeout=1.0)
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)

    rule = net.faults.add(
        Partition(
            [["replica-0", "replica-1", "replica-2", "client-1"], ["replica-3"]]
        )
    )

    def client(count):
        def gen():
            result = None
            for _ in range(count):
                raw = yield proxy.invoke_ordered(encode(("add", 1)))
                result = decode(raw)
            return result

        return gen()

    assert sim.run_process(client(5), until=sim.now + 60) == 5
    assert replicas[3].service.value == 0  # isolated
    rule.heal()
    assert sim.run_process(client(3), until=sim.now + 60) == 8
    for _ in range(30):
        sim.run(until=sim.now + 0.5)
        if replicas[3].service.value == 8:
            break
    assert all(r.service.value == 8 for r in replicas)


def test_scada_survives_partitioned_replica():
    """SMaRt-SCADA keeps serving the HMI with one Master replica cut off."""
    sim = Simulator(seed=3)
    system = build_smartscada(
        sim, config=SmartScadaConfig(request_timeout=0.5, sync_timeout=1.0)
    )
    system.frontend.add_item("sensor", initial=0)
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()
    everyone_else = [
        "replica-0",
        "replica-1",
        "replica-2",
        "frontend-0",
        "proxy-frontend-0",
        "proxy-frontend-0-bft",
        "proxy-hmi",
        "proxy-hmi-bft",
        "hmi",
    ]
    rule = system.net.faults.add(Partition([everyone_else, ["replica-3"]]))
    system.frontend.inject_update("sensor", 44)

    def operator():
        result = yield system.hmi.write("actuator", 2)
        return result

    result = sim.run_process(operator(), until=sim.now + 30)
    assert result.success
    sim.run(until=sim.now + 1)
    assert system.hmi.value_of("sensor") == 44
    # Heal; the cut-off replica converges.
    rule.heal()
    system.frontend.inject_update("sensor", 45)
    sim.run(until=sim.now + 5)
    assert len(set(system.state_digests())) == 1
