"""Tests for proactive recovery (replica rejuvenation)."""

import pytest

from repro.core import SmartScadaConfig, build_smartscada
from repro.core.recovery import RejuvenationScheduler, rejuvenate_replica
from repro.neoscada import HandlerChain, Monitor
from repro.sim import Simulator


def build(seed=31):
    sim = Simulator(seed=seed)
    system = build_smartscada(sim, config=SmartScadaConfig())
    system.frontend.add_item("sensor", initial=0)
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.attach_handlers("sensor", lambda: HandlerChain([Monitor(high=100.0)]))
    system.start()

    def reconfigure(proxy_master):
        proxy_master.attach_handlers("sensor", HandlerChain([Monitor(high=100.0)]))

    return sim, system, reconfigure


def feed(sim, system, count, base=0):
    for i in range(count):
        system.frontend.inject_update("sensor", base + i)
        sim.run(until=sim.now + 0.02)


def converge(sim, system, seconds=20.0):
    deadline = sim.now + seconds
    while sim.now < deadline:
        sim.run(until=sim.now + 0.5)
        live = [pm.replica for pm in system.proxy_masters if pm.replica.active]
        if len({r.last_decided for r in live}) == 1 and len(
            {r.executed_cid for r in live}
        ) == 1:
            return True
    return False


def test_single_rejuvenation_recovers_full_state():
    sim, system, reconfigure = build()
    feed(sim, system, 10, base=140)  # some values alarm (>100)
    old_storage = system.masters[0].storage.total_written
    assert old_storage > 0

    fresh = rejuvenate_replica(system, 2, handler_config=reconfigure)
    assert fresh.master.storage.total_written == 0  # pristine
    feed(sim, system, 5, base=10)
    assert converge(sim, system)
    assert fresh.replica.state_transfer.completed >= 1
    # The fresh replica recovered the alarm history and item values.
    assert fresh.master.storage.total_written >= old_storage
    assert len(set(system.state_digests())) == 1


def test_rejuvenated_replica_votes_in_logical_timeout():
    """The new incarnation's adapter client must be heard (sequence-start
    regression guard)."""
    from repro.net import Drop

    sim, system, reconfigure = build()
    feed(sim, system, 3)
    for index in range(2):
        rejuvenate_replica(system, index, handler_config=reconfigure)
    feed(sim, system, 3, base=50)
    assert converge(sim, system)

    system.net.faults.add(Drop(dst="frontend-0", kind="WriteValue"))

    def operator():
        result = yield system.hmi.write("actuator", 1)
        return result

    result = sim.run_process(operator(), until=sim.now + 30)
    assert not result.success
    assert "logical timeout" in result.reason


def test_scheduler_cycles_all_replicas():
    sim, system, reconfigure = build()

    def traffic():
        value = 0
        while True:
            yield sim.timeout(0.05)
            value += 1
            system.frontend.inject_update("sensor", value % 90)

    sim.process(traffic())
    scheduler = RejuvenationScheduler(
        system, period=3.0, handler_config=reconfigure, settle_time=2.0
    )
    scheduler.start()
    # One cycle = period + settle_time = 5 s; rejuvenations at t=3,8,13,18.
    sim.run(until=sim.now + 21)
    scheduler.stop()
    assert scheduler.rejuvenations == 4
    assert scheduler.recovered_in_time >= 3
    assert converge(sim, system)
    assert len(set(system.state_digests())) == 1


def test_back_to_back_installs_do_not_lose_history():
    """Regression: when a second state-transfer install lands while the
    first install's replay is still executing, the stale backlog (and the
    one request in flight at that instant) must not execute against the
    freshly installed state — it would poison the dedup table and make
    the second replay silently skip part of the history."""
    sim, system, reconfigure = build(seed=77)
    # Enough history that the replay takes real simulated time.
    feed(sim, system, 120, base=90)  # values 90..209; >100 alarm
    events_expected = system.masters[0].storage.total_written
    assert events_expected > 50

    fresh = rejuvenate_replica(system, 1, handler_config=reconfigure)
    # Keep deciding while the replay runs so the retry path triggers a
    # second install mid-replay.
    feed(sim, system, 40, base=90)
    assert converge(sim, system, seconds=30)
    assert fresh.replica.state_transfer.completed >= 1
    assert (
        fresh.master.storage.total_written
        == system.masters[0].storage.total_written
    )
    assert len(set(system.state_digests())) == 1


def test_rejuvenation_under_fire():
    """Rejuvenate while a WriteResult drop attack is active and a write is
    in flight: the §IV-D logical timeout must still unblock the operator,
    and the fresh replica must state-transfer back to convergence."""
    from repro.net import Drop

    sim, system, reconfigure = build(seed=13)
    feed(sim, system, 5)
    # The field executes writes but its results never come back.
    rule = system.net.faults.add(Drop(src="frontend-0", kind="WriteResult"))

    def operator():
        result = yield system.hmi.write("actuator", 7)
        return result

    process = sim.process(operator())
    sim.run(until=sim.now + 0.2)  # write enters the total order...
    fresh = rejuvenate_replica(system, 1, handler_config=reconfigure)
    sim.run(until=sim.now + 30)
    result = process.value

    assert not result.success
    assert "logical timeout" in result.reason
    system.net.faults.remove(rule)
    feed(sim, system, 5, base=30)
    assert converge(sim, system)
    assert fresh.replica.state_transfer.completed >= 1
    assert len(set(system.state_digests())) == 1


def test_scheduler_skips_slot_when_group_degraded():
    """Rejuvenation takes a replica out on purpose; with another replica
    already down the scheduler must skip the slot, not erode the quorum."""
    sim, system, reconfigure = build(seed=41)
    feed(sim, system, 3)
    system.proxy_masters[3].replica.halt()
    scheduler = RejuvenationScheduler(
        system, period=2.0, handler_config=reconfigure, settle_time=1.0
    )
    scheduler.start()
    sim.run(until=sim.now + 7)
    scheduler.stop()
    assert scheduler.rejuvenations == 0
    assert scheduler.skipped >= 2
    assert all("down" in entry["reason"] for entry in scheduler.skip_log)


def test_scheduler_defers_to_external_guard():
    """An orchestrator-supplied veto (mid-eviction, say) must win over
    the timer: every slot is skipped and logged while the guard holds."""
    sim, system, reconfigure = build(seed=42)
    feed(sim, system, 3)
    scheduler = RejuvenationScheduler(
        system,
        period=2.0,
        handler_config=reconfigure,
        settle_time=1.0,
        guard=lambda: "recovery action in flight",
    )
    scheduler.start()
    sim.run(until=sim.now + 7)
    scheduler.stop()
    assert scheduler.rejuvenations == 0
    assert scheduler.skipped >= 2
    assert all(
        entry["reason"] == "recovery action in flight"
        for entry in scheduler.skip_log
    )
    assert converge(sim, system)


def test_scheduler_validation():
    sim, system, _ = build()
    with pytest.raises(ValueError):
        RejuvenationScheduler(system, period=0)
    scheduler = RejuvenationScheduler(system, period=1.0)
    scheduler.start()
    with pytest.raises(RuntimeError):
        scheduler.start()
