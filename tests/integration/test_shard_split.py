"""Integration: live shard splits — migrating items between groups
under traffic, optionally growing the target group through the signed
reconfiguration protocol (:mod:`repro.shard.split`)."""

from repro.neoscada import HandlerChain, Monitor
from repro.shard import ShardSplitter, ShardedScadaConfig, build_sharded_scada
from repro.sim import Simulator

ITEMS = [f"plant.sensor-{i}" for i in range(8)]


def build(seed=1, shards=2):
    sim = Simulator(seed=seed)
    system = build_sharded_scada(sim, config=ShardedScadaConfig(shards=shards))
    for item in ITEMS:
        system.frontend.add_item(item, initial=10)
        system.attach_handlers(item, lambda: HandlerChain([Monitor(high=80.0)]))
    system.start()
    return sim, system


def moving_set(system, target, count=2):
    moved = [i for i in ITEMS if system.shard_of(i) != target][:count]
    assert len(moved) == count, "fixture items do not span the shards"
    return moved


def test_split_migrates_items_with_history_under_traffic():
    sim, system = build()
    target = 1
    moved = moving_set(system, target)
    splitter = ShardSplitter(system)

    def traffic():
        # Continuous updates on every item while the split runs.
        for round_no in range(40):
            for item in ITEMS:
                system.frontend.inject_update(item, 20 + round_no)
            yield sim.timeout(0.05)

    def flow():
        # Seed an alarm on a moving item so event history must migrate.
        system.frontend.inject_update(moved[0], 95)
        yield sim.timeout(0.3)
        report = yield from splitter.split(moved, target)
        yield sim.timeout(0.5)
        return report

    sim.process(traffic(), name="traffic")
    report = sim.run_process(flow(), until=60)

    assert report.status == "completed"
    assert report.moved_items == len(moved)
    assert report.moved_events >= 1  # the alarm's history moved too
    assert report.epoch == system.shard_map.epoch == 1
    assert not report.grew_target
    # Ownership actually changed, cache epochs included.
    for item in moved:
        assert system.shard_of(item) == target
    # The target group's Masters now hold the items; the source's don't.
    target_master = system.group(target)[0].master
    source_master = system.group(1 - target)[0].master
    for item in moved:
        assert item in target_master.items
        assert item not in source_master.items
    # The migrated alarm history answers queries on the new owner.
    assert any(
        e.event_type == "alarm"
        for e in target_master.storage.query(moved[0], limit=None)
    )


def test_post_split_traffic_routes_to_the_new_owner():
    sim, system = build()
    target = 0
    moved = moving_set(system, target)
    splitter = ShardSplitter(system)

    def flow():
        report = yield from splitter.split(moved, target)
        assert report.status == "completed"
        yield sim.timeout(0.2)
        before = [
            pm.master.stats["updates"] for pm in (system.group(0)[0], system.group(1)[0])
        ]
        for item in moved:
            system.frontend.inject_update(item, 55)
        yield sim.timeout(0.3)
        after = [
            pm.master.stats["updates"] for pm in (system.group(0)[0], system.group(1)[0])
        ]
        return before, after

    before, after = sim.run_process(flow(), until=60)
    # All post-split updates for the moved items landed on the target.
    assert after[target] == before[target] + len(moved)
    assert after[1 - target] == before[1 - target]
    for item in moved:
        assert system.hmi.value_of(item) == 55


def test_split_invalidates_every_router_cache_once():
    sim, system = build()
    target = 1
    moved = moving_set(system, target)
    splitter = ShardSplitter(system)

    def flow():
        # Warm the caches first.
        for item in ITEMS:
            system.frontend.inject_update(item, 30)
        yield sim.timeout(0.3)
        report = yield from splitter.split(moved, target)
        assert report.status == "completed"
        for item in ITEMS:
            system.frontend.inject_update(item, 31)
        yield sim.timeout(0.3)
        return True

    sim.run_process(flow(), until=60)
    router = system.proxy_frontends[0].router
    assert router.stats["invalidations"] == 1
    # Warm again after the one-shot invalidation: hits keep growing.
    assert router.stats["hits"] > 0


def test_split_can_grow_the_target_group():
    sim, system = build()
    target = 1
    moved = moving_set(system, target)
    n = system.config.base.n
    splitter = ShardSplitter(system)

    def flow():
        report = yield from splitter.split(moved, target, grow_target=True)
        yield sim.timeout(2.0)
        return report

    report = sim.run_process(flow(), until=60)
    assert report.status == "completed"
    assert report.grew_target
    assert report.join_view_id == 1
    grown = system.group(target)
    assert len(grown) == n + 1
    # The joined spare is a full group member: caught up, configured
    # (handler chains reapplied), digest-identical with its peers.
    assert len(set(system.state_digests(target))) == 1
    # The other group was never touched.
    assert len(system.group(1 - target)) == n


def test_split_of_already_owned_items_is_a_noop_migration():
    sim, system = build()
    target = 1
    owned = [i for i in ITEMS if system.shard_of(i) == target][:2]
    splitter = ShardSplitter(system)

    def flow():
        report = yield from splitter.split(owned, target)
        return report

    report = sim.run_process(flow(), until=30)
    assert report.status == "completed"
    assert report.moved_items == 0
    assert not report.sources


def test_splitter_keeps_an_audit_trail():
    sim, system = build()
    splitter = ShardSplitter(system)
    moved = moving_set(system, 1)

    def flow():
        yield from splitter.split(moved[:1], 1)
        yield from splitter.split(moved[1:], 1)
        return True

    sim.run_process(flow(), until=60)
    assert len(splitter.reports) == 2
    as_dicts = [r.as_dict() for r in splitter.reports]
    assert all(d["status"] == "completed" for d in as_dicts)
    assert system.shard_map.epoch == 2
