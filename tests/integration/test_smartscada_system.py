"""Integration tests for the full SMaRt-SCADA deployment.

Exercises the replicated use cases of §IV-D (Figures 6 and 7), the
determinism the challenges of §III-B demand, and the fault scenarios the
system exists to survive.
"""

import pytest

from repro.core import SmartScadaConfig, build_smartscada
from repro.neoscada import Block, HandlerChain, Monitor, Scale
from repro.net import Drop
from repro.sim import Simulator


def build(seed=1, config=None):
    sim = Simulator(seed=seed)
    system = build_smartscada(sim, config=config)
    return sim, system


def settle(sim, seconds=0.3):
    sim.run(until=sim.now + seconds)


def test_replicated_item_update_reaches_hmi():
    """Paper Figure 6: Frontend -> agreement -> replicas -> voted -> HMI."""
    sim, system = build()
    system.frontend.add_item("sensor", initial=0)
    system.start()
    system.frontend.inject_update("sensor", 42)
    settle(sim)
    assert system.hmi.value_of("sensor") == 42
    # Every replica executed the update.
    assert all(m.stats["updates"] >= 1 for m in system.masters)


def test_replicated_alarm_flow_with_deterministic_events():
    sim, system = build()
    system.frontend.add_item("sensor", initial=0)
    system.attach_handlers("sensor", lambda: HandlerChain([Monitor(high=100.0)]))
    system.start()
    system.frontend.inject_update("sensor", 500)
    settle(sim)
    alarms = system.hmi.alarms("sensor")
    assert len(alarms) == 1
    # The event id derives from the total order, not from any replica.
    assert alarms[0].event_id.startswith("evt-")
    # All replicas persisted byte-identical events.
    stored = {m.storage.latest(1)[0] for m in system.masters}
    assert len(stored) == 1


def test_replicated_write_value_roundtrip():
    """Paper Figure 7: the full 16-step write flow."""
    sim, system = build()
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()

    def operator():
        result = yield system.hmi.write("actuator", 9)
        return result

    result = sim.run_process(operator(), until=sim.now + 10)
    assert result.success
    settle(sim)
    assert system.frontend.items.get("actuator").value.value == 9
    assert system.hmi.value_of("actuator") == 9


def test_replicated_blocked_write_double_reply():
    """§II-B-b semantics survive replication: failed result + AE event."""
    sim, system = build()
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.attach_handlers(
        "actuator", lambda: HandlerChain([Block(allowed_operators=("chief",))])
    )
    system.start()

    def operator():
        result = yield system.hmi.write("actuator", 1)
        return result

    result = sim.run_process(operator(), until=sim.now + 10)
    assert not result.success
    assert "not authorized" in result.reason
    settle(sim)
    denied = [e for e in system.hmi.events if e.event_type == "write-denied"]
    assert len(denied) == 1
    assert system.frontend.stats["writes"] == 0


def test_replica_states_never_diverge():
    """The central claim: all Master replicas hold identical state."""
    sim, system = build()
    for i in range(5):
        system.frontend.add_item(f"sensor-{i}", initial=0)
    system.frontend.add_item("actuator", initial=0, writable=True)
    for i in range(5):
        system.attach_handlers(
            f"sensor-{i}", lambda: HandlerChain([Scale(0.5), Monitor(high=100.0)])
        )
    system.start()

    def traffic():
        for round_number in range(10):
            for i in range(5):
                system.frontend.inject_update(
                    f"sensor-{i}", 50 + round_number * 40 + i
                )
            if round_number % 3 == 0:
                yield system.hmi.write("actuator", round_number)
            yield sim.timeout(0.05)
        yield sim.timeout(0.5)
        return True

    sim.run_process(traffic(), until=sim.now + 30)
    assert len(set(system.state_digests())) == 1


def test_transparency_same_hmi_and_frontend_code():
    """Challenge (a): HMI/Frontend code is unchanged; only the address
    differs. The HMI used here is the same class the unreplicated system
    uses, pointed at the proxy."""
    from repro.neoscada.hmi import HMI

    sim, system = build()
    assert isinstance(system.hmi, HMI)
    assert system.hmi.master_address == "proxy-hmi"


def test_logical_timeout_unblocks_dropped_write_value():
    """§IV-D: an attacker drops the WriteValue towards the Frontend."""
    sim, system = build()
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()
    system.net.faults.add(Drop(dst="frontend-0", kind="WriteValue"))

    def operator():
        result = yield system.hmi.write("actuator", 1)
        return result

    result = sim.run_process(operator(), until=sim.now + 30)
    assert not result.success
    assert "logical timeout" in result.reason
    # Every replica synthesized the same empty WriteResult.
    settle(sim)
    assert len(set(system.state_digests())) == 1
    assert all(pm.timeouts.stats["synthesized"] == 1 for pm in system.proxy_masters)


def test_logical_timeout_unblocks_dropped_write_result():
    """§IV-D: the attacker drops the WriteResult coming back instead."""
    sim, system = build()
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()
    system.net.faults.add(Drop(src="frontend-0", kind="WriteResult"))

    def operator():
        result = yield system.hmi.write("actuator", 1)
        return result

    result = sim.run_process(operator(), until=sim.now + 30)
    assert not result.success
    assert "logical timeout" in result.reason


def test_writes_after_logical_timeout_still_work():
    sim, system = build()
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()
    rule = system.net.faults.add(Drop(dst="frontend-0", kind="WriteValue"))

    def operator():
        first = yield system.hmi.write("actuator", 1)
        system.net.faults.remove(rule)
        second = yield system.hmi.write("actuator", 2)
        return first, second

    first, second = sim.run_process(operator(), until=sim.now + 60)
    assert not first.success
    assert second.success


def test_crashed_replica_does_not_stop_scada():
    """f=1: the system keeps operating with one replica down."""
    sim, system = build()
    system.frontend.add_item("sensor", initial=0)
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()
    system.net.crash("replica-2")
    system.frontend.inject_update("sensor", 7)

    def operator():
        result = yield system.hmi.write("actuator", 3)
        return result

    result = sim.run_process(operator(), until=sim.now + 30)
    assert result.success
    settle(sim)
    assert system.hmi.value_of("sensor") == 7


def test_crashed_leader_replica_recovers_liveness():
    sim, system = build(
        config=SmartScadaConfig(request_timeout=0.5, sync_timeout=1.0)
    )
    system.frontend.add_item("sensor", initial=0)
    system.start()
    system.net.crash("replica-0")  # the initial leader
    system.frontend.inject_update("sensor", 99)
    sim.run(until=sim.now + 10)
    assert system.hmi.value_of("sensor") == 99
    live = [r for r in system.replicas if r.address != "replica-0"]
    assert all(r.synchronizer.regency >= 1 for r in live)


def test_suppressed_replica_pushes_do_not_starve_hmi():
    """f+1 push voting tolerates one replica withholding its copies."""
    sim, system = build()
    system.frontend.add_item("sensor", initial=0)
    system.start()
    system.frontend.inject_update("sensor", 42)
    settle(sim)
    assert system.hmi.value_of("sensor") == 42

    # One replica's pushes vanish: the HMI still gets updates because
    # f+1 of the remaining replicas agree.
    system.net.faults.add(Drop(src="replica-1", kind="PushMessage"))
    system.frontend.inject_update("sensor", 43)
    settle(sim)
    assert system.hmi.value_of("sensor") == 43


def test_forging_replica_pushes_are_outvoted():
    """A Byzantine replica rewrites its pushed ItemUpdates; the HMI-side
    f+1 vote never accepts the minority forgery."""
    from repro.bftsmart.messages import PushMessage
    from repro.net import Tamper
    from repro.wire import decode, encode
    from repro.neoscada.messages import ItemUpdate
    from repro.neoscada.values import DataValue

    sim, system = build()
    system.frontend.add_item("sensor", initial=0)
    system.start()

    def forge(payload):
        # Rewrite replica-1's pushed ItemUpdates to a poisoned value.
        if isinstance(payload, PushMessage):
            inner = decode(payload.payload)
            if isinstance(inner, ItemUpdate):
                poisoned = ItemUpdate(
                    item_id=inner.item_id, value=DataValue(666_666)
                )
                return PushMessage(
                    replica=payload.replica,
                    client_id=payload.client_id,
                    stream=payload.stream,
                    order=payload.order,
                    payload=encode(poisoned),
                )
        return payload

    system.net.faults.add(Tamper(forge, src="replica-1", kind="PushMessage"))
    system.frontend.inject_update("sensor", 42)
    settle(sim)
    assert system.hmi.value_of("sensor") == 42


def test_deterministic_full_system_runs():
    def run(seed):
        sim, system = build(seed=seed)
        system.frontend.add_item("sensor", initial=0)
        system.start()
        for i in range(10):
            system.frontend.inject_update("sensor", i)
        sim.run(until=sim.now + 2)
        return (
            system.hmi.stats["updates"],
            system.state_digests(),
        )

    assert run(7) == run(7)


def test_multiple_frontends_replicated():
    sim = Simulator(seed=3)
    system = build_smartscada(sim, frontend_count=2)
    system.frontends[0].add_item("north.sensor", initial=0)
    system.frontends[1].add_item("south.actuator", initial=0, writable=True)
    system.start()
    system.frontends[0].inject_update("north.sensor", 5)

    def operator():
        result = yield system.hmi.write("south.actuator", 8)
        return result

    result = sim.run_process(operator(), until=sim.now + 10)
    assert result.success
    settle(sim)
    assert system.hmi.value_of("north.sensor") == 5
    assert system.frontends[1].items.get("south.actuator").value.value == 8
