"""Integration: the full chaos scenario library, seed sweeps, the
over-budget attack drill and schedule shrinking."""

import pytest

from repro.chaos import (
    ChaosBudgetError,
    get_scenario,
    list_scenarios,
    replay_snippet,
    run_campaign,
    sample_schedule,
    shrink_schedule,
    sweep_seeds,
)
from repro.chaos.campaign import CampaignConfig

LIBRARY = [s for s in list_scenarios() if not s.expect_violation]


@pytest.mark.parametrize("scenario", LIBRARY, ids=lambda s: s.name)
def test_library_scenario_survives_ten_seeds(scenario):
    reports = sweep_seeds(scenario.schedule(), range(10), scenario.config())
    failing = {
        seed: [(v.invariant, v.detail) for v in report.violations]
        for seed, report in reports.items()
        if not report.ok
    }
    assert not failing, failing


def test_randomized_campaigns_survive_sampled_schedules():
    reports = sweep_seeds(lambda s: sample_schedule(s), range(10), CampaignConfig())
    failing = {
        seed: [(v.invariant, v.detail) for v in report.violations]
        for seed, report in reports.items()
        if not report.ok
    }
    assert not failing, failing


def test_overbudget_campaign_requires_opt_in():
    scenario = get_scenario("overbudget-falsify")
    with pytest.raises(ChaosBudgetError):
        run_campaign(scenario.schedule(), CampaignConfig())  # no overload


def test_overbudget_falsify_detected_as_safety_violation():
    """Two colluding falsifying replicas (f=1) must trip the safety
    monitors: the HMI displays a forged reading that passed the f+1
    push vote."""
    scenario = get_scenario("overbudget-falsify")
    report = run_campaign(scenario.schedule(), scenario.config(seed=0))
    assert not report.ok
    assert "hmi-truth" in report.violated_invariants()


def test_shrinker_minimizes_overbudget_schedule():
    scenario = get_scenario("overbudget-falsify")
    config = scenario.config(seed=0)
    assert len(scenario.schedule()) == 5
    result = shrink_schedule(scenario.schedule(), config)
    # The noise actions are stripped; only the colluding swaps remain.
    assert len(result.schedule) <= 3
    assert result.removed_actions >= 2
    assert not result.report.ok
    assert all(
        type(action).__name__ == "SwapByzantine" for action in result.schedule
    )


def test_shrinker_refuses_passing_schedule():
    scenario = get_scenario("leader-crash")
    with pytest.raises(ValueError, match="does not violate"):
        shrink_schedule(scenario.schedule(), scenario.config(seed=0))


def test_replay_snippet_reproduces_the_violation():
    scenario = get_scenario("overbudget-falsify")
    config = scenario.config(seed=0)
    result = shrink_schedule(scenario.schedule(), config)
    namespace = {}
    exec(compile(result.snippet, "<replay>", "exec"), namespace)  # noqa: S102
    replayed = namespace["report"]
    assert not replayed.ok
    assert replayed.violated_invariants() == result.report.violated_invariants()
    assert replayed.fingerprint() == result.report.fingerprint()


def test_replay_snippet_is_valid_python_for_any_scenario():
    for scenario in list_scenarios():
        snippet = replay_snippet(scenario.schedule(), scenario.config())
        compile(snippet, f"<{scenario.name}>", "exec")
