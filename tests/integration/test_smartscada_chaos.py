"""Chaos test: a larger deployment under mixed traffic and rolling faults.

Three frontends, thirty items with handler chains, continuous updates,
periodic operator writes, probabilistic message loss, one replica crash
and recovery — at the end, every live Master replica must hold
byte-identical state and the HMI's view must match the field.
"""

import pytest

from repro.core import SmartScadaConfig, build_smartscada
from repro.neoscada import Block, HandlerChain, Monitor, Scale
from repro.net import Drop
from repro.sim import Simulator

ITEMS_PER_FRONTEND = 10


def test_chaos_run_converges():
    sim = Simulator(seed=23)
    config = SmartScadaConfig(request_timeout=1.0, sync_timeout=2.0)
    system = build_smartscada(sim, config=config, frontend_count=3)

    item_ids = []
    for index, frontend in enumerate(system.frontends):
        for i in range(ITEMS_PER_FRONTEND):
            item_id = f"area{index}.sensor{i}"
            frontend.add_item(item_id, initial=0)
            item_ids.append(item_id)
            system.attach_handlers(
                item_id,
                lambda: HandlerChain([Scale(0.1), Monitor(high=50.0)]),
            )
        frontend.add_item(f"area{index}.actuator", initial=0, writable=True)
        system.attach_handlers(
            f"area{index}.actuator",
            lambda: HandlerChain([Block(allowed_operators=("operator-1",))]),
        )
    system.start()

    # 1% probabilistic loss on everything (clients retransmit, pushes are
    # redundant across replicas, consensus has quorums to spare).
    system.net.faults.add(Drop(probability=0.01))

    def traffic():
        for round_number in range(60):
            frontend = system.frontends[round_number % 3]
            item = item_ids[(round_number * 7) % len(item_ids)]
            frontend.inject_update(item, (round_number * 13) % 900)
            if round_number % 10 == 5:
                result = yield system.hmi.write(
                    f"area{round_number % 3}.actuator", round_number
                )
                assert result is not None
            yield sim.timeout(0.05)
        return True

    def chaos():
        yield sim.timeout(1.0)
        system.net.crash("replica-1")
        yield sim.timeout(1.5)
        system.net.recover("replica-1")
        return True

    traffic_proc = sim.process(traffic())
    sim.process(chaos())
    sim.run(until=sim.now + 120, stop_on=traffic_proc)
    assert traffic_proc.ok

    # Let the recovered replica finish catching up.
    for _ in range(120):
        sim.run(until=sim.now + 0.5)
        decided = {r.last_decided for r in system.replicas}
        executed = {r.executed_cid for r in system.replicas}
        if len(decided) == 1 and len(executed) == 1:
            break

    digests = system.state_digests()
    assert len(set(digests)) == 1, "replicas diverged under chaos"

    # HMI view agrees with the replicated Masters' item space.
    master = system.masters[0]
    disagreements = [
        item_id
        for item_id in item_ids
        if system.hmi.value_of(item_id) is not None
        and system.hmi.value_of(item_id) != master.items.get(item_id).value.value
    ]
    assert disagreements == []
    # Alarms flowed (scaled values above 50 exist in the workload).
    assert len(system.hmi.alarms()) > 0
