"""Integration tests for the sharded SMaRt-SCADA deployment.

The transparency contract under test: callers use the exact same
Frontend/HMI API against N independent BFT groups as against one —
routing, scatter-gather and the global AE order are the proxies'
problem (the same seam the paper used to hide replication itself).
"""

import pytest

from repro.neoscada import HandlerChain, Monitor
from repro.shard import (
    CORRELATED_ALARM,
    ShardedScadaConfig,
    build_sharded_scada,
)
from repro.sim import Simulator

ITEMS = [f"plant.sensor-{i}" for i in range(8)]


def build(seed=1, shards=2, config=None, **kwargs):
    sim = Simulator(seed=seed)
    config = config or ShardedScadaConfig(shards=shards, **kwargs)
    system = build_sharded_scada(sim, config=config)
    return sim, system


def settle(sim, seconds=0.3):
    sim.run(until=sim.now + seconds)


def spanning_items(system, items=ITEMS):
    """Sanity: the fixture's items must actually span several groups."""
    shards = {system.shard_of(item) for item in items}
    assert len(shards) > 1, "fixture items all hash to one shard"
    return shards


def test_updates_route_to_owning_groups_and_reach_the_hmi():
    sim, system = build()
    for item in ITEMS:
        system.frontend.add_item(item, initial=0)
    system.start()
    spanning_items(system)
    for i, item in enumerate(ITEMS):
        system.frontend.inject_update(item, 100 + i)
    settle(sim)
    for i, item in enumerate(ITEMS):
        assert system.hmi.value_of(item) == 100 + i
    # Each update was executed only by its owning group: per-group
    # update counts must sum to the total (two per item: the initial
    # value published at subscribe time plus the injected one), not
    # multiply by it.
    per_shard = [
        sum(pm.master.stats["updates"] for pm in system.group(s)) // len(system.group(s))
        for s in range(system.shards)
    ]
    assert sum(per_shard) == 2 * len(ITEMS)
    assert all(count > 0 for count in per_shard)


def test_writes_route_to_the_owning_group():
    sim, system = build()
    for item in ITEMS:
        system.frontend.add_item(item, initial=0, writable=True)
    system.start()

    def operator():
        for i, item in enumerate(ITEMS[:4]):
            result = yield system.hmi.write(item, 50 + i)
            assert result.success, item
        return True

    sim.run_process(operator(), until=30)
    settle(sim)
    for i, item in enumerate(ITEMS[:4]):
        assert system.hmi.value_of(item) == 50 + i


def test_value_query_uses_the_unordered_fast_path_per_shard():
    sim, system = build()
    for item in ITEMS:
        system.frontend.add_item(item, initial=7)
    system.start()
    settle(sim)
    before = system.proxy_hmi.stats["unordered_reads"]

    def reader():
        for item in ITEMS[:4]:
            value = yield system.hmi.query_value(item)
            assert value.value == 7, item
        return True

    sim.run_process(reader(), until=30)
    assert system.proxy_hmi.stats["unordered_reads"] >= before + 4


def test_wildcard_event_query_scatters_and_merges_globally():
    sim, system = build()
    for item in ITEMS:
        system.frontend.add_item(item, initial=0)
        system.attach_handlers(item, lambda: HandlerChain([Monitor(high=80.0)]))
    system.start()

    def scenario():
        for item in ITEMS:
            system.frontend.inject_update(item, 95)
            yield sim.timeout(0.02)
        yield sim.timeout(0.5)
        events = yield system.hmi.query_events("*")
        return events

    events = sim.run_process(scenario(), until=30)
    assert system.proxy_hmi.stats["scatter_queries"] >= 1
    alarmed = [e.item_id for e in events if e.event_type == "alarm"]
    assert sorted(alarmed) == sorted(ITEMS)
    # The scatter-merge applies the global order rule: timestamps
    # non-decreasing across the merged reply.
    stamps = [e.timestamp for e in events]
    assert stamps == sorted(stamps)


def test_single_item_event_query_routes_to_one_group():
    sim, system = build()
    for item in ITEMS:
        system.frontend.add_item(item, initial=0)
        system.attach_handlers(item, lambda: HandlerChain([Monitor(high=80.0)]))
    system.start()

    def scenario():
        system.frontend.inject_update(ITEMS[0], 95)
        yield sim.timeout(0.3)
        scatters = system.proxy_hmi.stats["scatter_queries"]
        events = yield system.hmi.query_events(ITEMS[0])
        assert system.proxy_hmi.stats["scatter_queries"] == scatters
        return events

    events = sim.run_process(scenario(), until=30)
    assert [e.item_id for e in events if e.event_type == "alarm"] == [ITEMS[0]]


def test_alarm_pushes_arrive_in_global_order():
    sim, system = build()
    for item in ITEMS:
        system.frontend.add_item(item, initial=0)
        system.attach_handlers(item, lambda: HandlerChain([Monitor(high=80.0)]))
    system.start()

    def scenario():
        for item in ITEMS:
            system.frontend.inject_update(item, 95)
            yield sim.timeout(0.02)
        yield sim.timeout(0.5)
        return True

    sim.run_process(scenario(), until=30)
    system.flush_events()
    alarms = system.hmi.alarms()
    assert len(alarms) == len(ITEMS)
    stamps = [a.timestamp for a in alarms]
    assert stamps == sorted(stamps)
    merger = system.proxy_hmi.merger
    assert merger.stats["released"] == merger.stats["offered"] == len(ITEMS)


def test_router_caches_are_warm_after_the_first_resolution():
    sim, system = build()
    for item in ITEMS:
        system.frontend.add_item(item, initial=0)
    system.start()
    for _ in range(3):
        for item in ITEMS:
            system.frontend.inject_update(item, 1)
    settle(sim)
    stats = system.proxy_frontends[0].router.stats
    # One miss per distinct routed id; everything after is a dict hit.
    assert stats["hits"] > stats["misses"]
    assert stats["invalidations"] == 0


def test_browse_gathers_every_groups_items_into_one_reply():
    sim, system = build()
    for item in ITEMS:
        system.frontend.add_item(item, initial=0)
    system.start()  # HMI start() browses "*" through the proxy
    settle(sim)
    assert system.proxy_hmi._browse_gathers == []


def test_cross_shard_alarm_burst_raises_one_correlated_alarm():
    sim, system = build()
    for item in ITEMS:
        system.frontend.add_item(item, initial=0)
        system.attach_handlers(item, lambda: HandlerChain([Monitor(high=80.0)]))
    system.start()
    spanning_items(system)

    def scenario():
        # Alarms on every shard within one correlation window.
        for item in ITEMS:
            system.frontend.inject_update(item, 95)
            yield sim.timeout(0.02)
        yield sim.timeout(0.5)
        return True

    sim.run_process(scenario(), until=30)
    system.flush_events()
    correlator = system.proxy_hmi.correlator
    assert len(correlator.correlated) == 1
    synthetic = correlator.correlated[0]
    assert synthetic.event_type == CORRELATED_ALARM
    # The synthetic alarm reached the HMI's event log too.
    assert any(
        e.event_type == CORRELATED_ALARM for e in system.hmi.events
    )


def test_groups_converge_independently():
    sim, system = build()
    for item in ITEMS:
        system.frontend.add_item(item, initial=0)
    system.start()
    for item in ITEMS:
        system.frontend.inject_update(item, 3)
    settle(sim)
    for shard in range(system.shards):
        assert len(set(system.state_digests(shard))) == 1


def test_single_shard_build_degenerates_to_the_classic_topology():
    sim, system = build(shards=1)
    # Classic wire addresses: no shard namespace prefix.
    assert [pm.address for pm in system.proxy_masters] == [
        f"replica-{i}" for i in range(system.config.base.n)
    ]
    # No merge layer, no correlator, no router: nothing to shard.
    assert system.proxy_hmi.merger is None
    assert system.proxy_hmi.correlator is None
    system.frontend.add_item("sensor", initial=0)
    system.start()
    system.frontend.inject_update("sensor", 42)
    settle(sim)
    assert system.hmi.value_of("sensor") == 42


def test_four_shard_build_stands_up_sixteen_replicas():
    sim, system = build(shards=4)
    assert len(system.proxy_masters) == 4 * system.config.base.n
    for item in ITEMS:
        system.frontend.add_item(item, initial=0)
    system.start()
    for i, item in enumerate(ITEMS):
        system.frontend.inject_update(item, i)
    settle(sim)
    for i, item in enumerate(ITEMS):
        assert system.hmi.value_of(item) == i


def test_sharded_build_without_map_is_rejected():
    from repro.core.proxy_frontend import ProxyFrontend
    from repro.core.system import make_network
    from repro.crypto import KeyStore

    sim = Simulator(seed=1)
    config = ShardedScadaConfig(shards=2)
    groups = config.group_configs()
    net = make_network(sim)
    with pytest.raises(ValueError, match="shard map"):
        ProxyFrontend(
            sim,
            net,
            "proxy-frontend",
            "frontend",
            groups[0],
            KeyStore(),
            groups=groups,
            shard_map=None,
        )
