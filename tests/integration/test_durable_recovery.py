"""Integration tests for restart-from-disk recovery (the PR's tentpole).

Acceptance criteria exercised here:

- an intact-disk restart rejoins through WAL replay plus the *partial*
  log-tail transfer — never a full-snapshot install — and ships strictly
  fewer bytes than the wiped-disk (snapshot) path;
- torn / corrupt disks are caught by digest verification and fall back
  to the full transfer with no safety violation;
- a wiped disk behaves exactly like proactive rejuvenation;
- chaos campaigns stay bit-deterministic with durability on, for every
  fsync policy;
- storage counters surface through ``Simulator.stats()``.
"""

import pytest

from repro.chaos import run_scenario
from repro.core import SmartScadaConfig, build_smartscada
from repro.core.recovery import rejuvenate_replica, restart_replica
from repro.neoscada import HandlerChain, Monitor
from repro.sim import Simulator
from repro.storage import FSYNC_POLICIES


def build(seed=31, **overrides):
    config = SmartScadaConfig(durability=True, **overrides)
    sim = Simulator(seed=seed)
    system = build_smartscada(sim, config=config)
    system.frontend.add_item("sensor", initial=0)
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.attach_handlers("sensor", lambda: HandlerChain([Monitor(high=100.0)]))
    system.start()

    def reconfigure(proxy_master):
        proxy_master.attach_handlers("sensor", HandlerChain([Monitor(high=100.0)]))

    return sim, system, reconfigure


def feed(sim, system, count, base=0):
    for i in range(count):
        system.frontend.inject_update("sensor", base + i)
        sim.run(until=sim.now + 0.02)


def converge(sim, system, seconds=20.0):
    deadline = sim.now + seconds
    while sim.now < deadline:
        sim.run(until=sim.now + 0.5)
        live = [pm.replica for pm in system.proxy_masters if pm.replica.active]
        if len({r.last_decided for r in live}) == 1 and len(
            {r.executed_cid for r in live}
        ) == 1:
            return True
    return False


def crash_and_restart(sim, system, reconfigure, index, disk, outage=10):
    """Power-cut replica ``index``, let peers advance, reboot from disk."""
    system.proxy_masters[index].replica.halt()
    system.durable_storage[index].crash(disk)
    feed(sim, system, outage, base=40)  # peers decide without the victim
    return restart_replica(
        system, index, disk_fault=None, handler_config=reconfigure
    )


def test_restart_requires_durable_deployment():
    sim = Simulator(seed=1)
    system = build_smartscada(sim, config=SmartScadaConfig())
    with pytest.raises(ValueError):
        restart_replica(system, 0)


def test_intact_restart_rejoins_without_full_snapshot():
    sim, system, reconfigure = build()
    feed(sim, system, 12, base=120)  # some values alarm (>100)
    fresh = crash_and_restart(sim, system, reconfigure, 2, "intact")

    recovered = fresh.replica.recovered_from_disk
    assert recovered is not None and not recovered.damaged
    assert recovered.entries  # the WAL tail actually replayed

    feed(sim, system, 5, base=10)
    assert converge(sim, system)
    transfer = fresh.replica.state_transfer
    # The acceptance criterion: WAL replay + log-tail transfer ONLY.
    assert transfer.full_installs == 0
    assert transfer.partial_installs >= 1
    assert len(set(system.state_digests())) == 1


def test_intact_restart_ships_fewer_bytes_than_snapshot_path():
    def run(disk):
        sim, system, reconfigure = build(seed=47)
        feed(sim, system, 15, base=120)
        fresh = crash_and_restart(sim, system, reconfigure, 2, disk)
        feed(sim, system, 5, base=10)
        assert converge(sim, system)
        assert len(set(system.state_digests())) == 1
        return fresh.replica.state_transfer.bytes_installed

    tail_bytes = run("intact")
    snapshot_bytes = run("wiped")
    assert 0 < tail_bytes < snapshot_bytes


def test_intact_restart_recovers_checkpoint_plus_wal_tail():
    # Frequent checkpoints: the victim's disk holds checkpoint + tail.
    sim, system, reconfigure = build(seed=5, checkpoint_interval=8)
    feed(sim, system, 12, base=120)
    # Short outage: peers must not checkpoint past the victim's recovered
    # position, or log truncation forces the (correct) full fallback.
    fresh = crash_and_restart(sim, system, reconfigure, 2, "intact", outage=2)

    recovered = fresh.replica.recovered_from_disk
    assert not recovered.damaged
    assert recovered.checkpoint_cid >= 0  # snapshot loaded from disk...
    assert recovered.entries  # ...and the WAL tail on top

    feed(sim, system, 5, base=10)
    assert converge(sim, system)
    assert fresh.replica.state_transfer.full_installs == 0
    assert len(set(system.state_digests())) == 1


@pytest.mark.parametrize("disk", ["torn", "corrupt"])
def test_damaged_disk_falls_back_to_full_transfer(disk):
    sim, system, reconfigure = build(seed=13, checkpoint_interval=8)
    feed(sim, system, 12, base=120)
    fresh = crash_and_restart(sim, system, reconfigure, 2, disk)

    recovered = fresh.replica.recovered_from_disk
    assert recovered.damaged  # the digest frame caught the lie
    assert "digest" in recovered.notes or "verification" in recovered.notes

    feed(sim, system, 5, base=10)
    assert converge(sim, system)
    assert fresh.replica.state_transfer.full_installs >= 1
    # Safety: the damaged disk never leaked into the replicated state.
    assert len(set(system.state_digests())) == 1


def test_wiped_restart_behaves_like_rejuvenation():
    sim, system, reconfigure = build(seed=21)
    feed(sim, system, 10, base=120)
    fresh = crash_and_restart(sim, system, reconfigure, 2, "wiped")
    recovered = fresh.replica.recovered_from_disk
    assert recovered.checkpoint_cid == -1 and not recovered.entries

    # The reference: proactive rejuvenation of another replica.
    rejuvenated = rejuvenate_replica(system, 1, handler_config=reconfigure)
    feed(sim, system, 5, base=10)
    assert converge(sim, system)
    # Both came back through the same full-transfer path.
    assert fresh.replica.state_transfer.full_installs >= 1
    assert rejuvenated.replica.state_transfer.full_installs >= 1
    assert len(set(system.state_digests())) == 1


def test_reinstalled_disk_survives_a_second_crash():
    """After a full-transfer fallback the disk is re-seeded; a second
    intact crash must recover from the *new* history, not the damaged
    pre-fallback one."""
    sim, system, reconfigure = build(seed=9, checkpoint_interval=8)
    feed(sim, system, 12, base=120)
    crash_and_restart(sim, system, reconfigure, 2, "corrupt")
    feed(sim, system, 5, base=10)
    assert converge(sim, system)

    fresh = crash_and_restart(sim, system, reconfigure, 2, "intact", outage=2)
    recovered = fresh.replica.recovered_from_disk
    assert not recovered.damaged
    feed(sim, system, 5, base=20)
    assert converge(sim, system)
    assert len(set(system.state_digests())) == 1


def test_storage_counters_surface_in_simulator_stats():
    sim, system, _ = build()
    feed(sim, system, 5)
    stats = sim.stats()
    assert "storage" in stats
    per_disk = stats["storage"]
    assert len(per_disk) == len(system.proxy_masters)
    for counters in per_disk.values():
        assert counters["appends"] > 0
        assert counters["fsyncs"] > 0  # every-decision default


@pytest.mark.parametrize("policy", FSYNC_POLICIES)
def test_campaigns_stay_deterministic_for_every_fsync_policy(policy):
    first = run_scenario("crash-restart-intact", seed=3, fsync_policy=policy)
    second = run_scenario("crash-restart-intact", seed=3, fsync_policy=policy)
    assert first.ok and second.ok
    assert first.fingerprint() == second.fingerprint()
    assert first.restarts == second.restarts == 1


def test_damaged_scenarios_hold_invariants():
    for name in ("crash-restart-torn", "crash-restart-corrupt",
                 "crash-restart-wiped"):
        report = run_scenario(name, seed=3)
        assert report.ok, (name, report.violated_invariants())
        (event,) = report.recoveries
        assert event["settled_at"] is not None
