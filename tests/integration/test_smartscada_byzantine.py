"""SMaRt-SCADA under Byzantine Master replicas — the reason it exists."""

import pytest

from repro.bftsmart import LyingReplica, SilentReplica, StutteringReplica
from repro.core import SmartScadaConfig, build_smartscada
from repro.neoscada import HandlerChain, Monitor
from repro.sim import Simulator


def build(replica_classes, seed=41):
    sim = Simulator(seed=seed)
    system = build_smartscada(
        sim,
        config=SmartScadaConfig(request_timeout=0.5, sync_timeout=1.0),
        replica_classes=replica_classes,
    )
    system.frontend.add_item("sensor", initial=0)
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.attach_handlers("sensor", lambda: HandlerChain([Monitor(high=100.0)]))
    system.start()
    return sim, system


def drive(sim, system):
    system.frontend.inject_update("sensor", 150)  # alarms
    sim.run(until=sim.now + 1.0)

    def operator():
        result = yield system.hmi.write("actuator", 5)
        return result

    return sim.run_process(operator(), until=sim.now + 30)


@pytest.mark.parametrize(
    "behaviour", [SilentReplica, LyingReplica, StutteringReplica], ids=lambda c: c.__name__
)
def test_one_byzantine_master_replica_is_tolerated(behaviour):
    sim, system = build({2: behaviour})
    result = drive(sim, system)
    assert result.success
    sim.run(until=sim.now + 1)
    assert system.hmi.value_of("sensor") == 150
    assert system.hmi.value_of("actuator") == 5
    assert len(system.hmi.alarms()) == 1
    # The honest replicas agree with each other.
    honest = [
        pm for pm in system.proxy_masters if not isinstance(pm.replica, behaviour)
    ]
    from repro.crypto import digest

    digests = {digest(pm.service.snapshot()) for pm in honest}
    assert len(digests) == 1


def test_byzantine_leader_master_replica_is_deposed():
    from repro.bftsmart import EquivocatingLeader
    from repro.crypto import digest

    sim, system = build({0: EquivocatingLeader})
    result = drive(sim, system)
    assert result.success
    honest = system.replicas[1:]
    assert all(r.synchronizer.regency >= 1 for r in honest)
    # The equivocation may have scrambled the *first* batch's internal
    # order (consistently at every replica — e.g. the HMI subscription
    # landing after the first update), but once the honest leader rules,
    # updates flow normally and the replicas agree byte-for-byte.
    system.frontend.inject_update("sensor", 160)
    sim.run(until=sim.now + 1)
    assert system.hmi.value_of("sensor") == 160
    digests = {digest(pm.service.snapshot()) for pm in system.proxy_masters[1:]}
    assert len(digests) == 1
