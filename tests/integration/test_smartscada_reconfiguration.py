"""Runtime reconfiguration of the replicated SCADA Master group.

BFT-SMaRt's live membership change, exercised at the SCADA level: a
fifth ProxyMaster joins a running deployment (state-transferring the
whole Master state — items, storage, subscriptions — on the way in), and
later a replica is retired. Traffic flows throughout.
"""

import pytest

from repro.bftsmart import Administrator, View, build_proxy
from repro.core import SmartScadaConfig, build_smartscada
from repro.core.proxy_master import ProxyMaster
from repro.neoscada import HandlerChain, Monitor
from repro.sim import Simulator
from repro.wire import decode


def test_add_fifth_master_replica_at_runtime():
    sim = Simulator(seed=17)
    config = SmartScadaConfig()
    system = build_smartscada(sim, config=config)
    system.frontend.add_item("sensor", initial=0)
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.attach_handlers("sensor", lambda: HandlerChain([Monitor(high=100.0)]))
    system.start()

    # Some pre-reconfiguration history (alarms included).
    for value in (50, 150, 60):
        system.frontend.inject_update("sensor", value)
    sim.run(until=sim.now + 0.5)

    # The administrator orders the membership change.
    group = config.group_config()
    admin_proxy = build_proxy(
        sim, system.net, "admin-client", group, system.keystore
    )
    admin = Administrator(admin_proxy, system.keystore)
    event = admin.reconfigure(join=("replica-4",))
    sim.run(until=sim.now + 2, stop_on=event)
    assert decode(event.value) == ("ok", 1)

    # Start the new ProxyMaster with the post-change view and the same
    # handler configuration, and tell the proxies about the new view.
    new_view = View(
        1, ("replica-0", "replica-1", "replica-2", "replica-3", "replica-4"), 1
    )
    joiner = ProxyMaster(
        sim, system.net, 4, config, system.keystore, group=group, view=new_view
    )
    joiner.attach_handlers("sensor", HandlerChain([Monitor(high=100.0)]))
    system.proxy_masters.append(joiner)
    system.update_views(new_view)

    # Keep operating; the joiner state-transfers in.
    for value in (70, 160):
        system.frontend.inject_update("sensor", value)
    sim.run(until=sim.now + 3)

    assert system.hmi.value_of("sensor") == 160
    assert joiner.replica.state_transfer.completed >= 1
    assert joiner.master.items.get("sensor").value.value == 160
    # The joiner's storage has the full alarm history (150 and 160).
    assert len(joiner.master.storage.query(event_type="alarm")) == 2
    # All five replicas byte-identical.
    assert len(set(system.state_digests())) == 1

    # Writes still work against the larger group.
    def operator():
        result = yield system.hmi.write("actuator", 9)
        return result

    result = sim.run_process(operator(), until=sim.now + 10)
    assert result.success


def test_remove_replica_then_survive_one_crash():
    """Grow to five, retire the original leader, then crash another
    replica: the remaining four-of-five still tolerate f=1."""
    sim = Simulator(seed=19)
    config = SmartScadaConfig(request_timeout=0.5, sync_timeout=1.0)
    system = build_smartscada(sim, config=config)
    system.frontend.add_item("sensor", initial=0)
    system.start()
    group = config.group_config()
    admin_proxy = build_proxy(sim, system.net, "admin-client", group, system.keystore)
    admin = Administrator(admin_proxy, system.keystore)

    # Step 1: add replica-4.
    event = admin.reconfigure(join=("replica-4",))
    view1 = View(
        1, ("replica-0", "replica-1", "replica-2", "replica-3", "replica-4"), 1
    )
    joiner = ProxyMaster(
        sim, system.net, 4, config, system.keystore, group=group, view=view1
    )
    system.proxy_masters.append(joiner)
    sim.run(until=sim.now + 2, stop_on=event)
    assert decode(event.value) == ("ok", 1)
    system.update_views(view1)
    sim.run(until=sim.now + 2)

    # Step 2: retire replica-0.
    event = admin.reconfigure(leave=("replica-0",))
    sim.run(until=sim.now + 2, stop_on=event)
    assert decode(event.value) == ("ok", 2)
    view2 = View(2, ("replica-1", "replica-2", "replica-3", "replica-4"), 1)
    system.update_views(view2)
    sim.run(until=sim.now + 1)
    assert not system.proxy_masters[0].replica.active

    # Step 3: crash one of the remaining replicas; traffic must survive.
    system.net.crash("replica-2")
    system.frontend.inject_update("sensor", 77)
    sim.run(until=sim.now + 10)
    assert system.hmi.value_of("sensor") == 77
