"""Unit tests for workload generators and metrics."""

import math

import pytest

from repro.core import build_neoscada
from repro.sim import Simulator
from repro.workloads import (
    LatencyRecorder,
    ThroughputMeter,
    UpdateWorkload,
    WriteWorkload,
)


def make_system(seed=1):
    sim = Simulator(seed=seed)
    system = build_neoscada(sim)
    for i in range(4):
        system.frontend.add_item(f"s{i}", initial=0)
    system.frontend.add_item("act", initial=0, writable=True)
    system.start()
    return sim, system


# -- UpdateWorkload -----------------------------------------------------------


def test_update_workload_rate_and_round_robin():
    sim, system = make_system()
    workload = UpdateWorkload(
        sim, system.frontend, ["s0", "s1", "s2", "s3"], rate=100.0
    )
    workload.start(duration=1.0)
    sim.run(until=sim.now + 2.0)
    assert workload.injected in (100, 101)
    # Round-robin: every item received updates.
    assert system.frontend.items.get("s3").value.value is not None


def test_update_workload_alarm_ratio_is_exact():
    sim, system = make_system()
    workload = UpdateWorkload(
        sim,
        system.frontend,
        ["s0"],
        rate=200.0,
        alarm_ratio=0.25,
        normal_value=10,
        alarm_value=10_000,
    )
    workload.start(duration=1.0)
    sim.run(until=sim.now + 2.0)
    # Float time accumulation may allow one boundary injection either way.
    assert workload.injected in (200, 201)
    # The fraction accumulator yields *exactly* ratio * n alarms.
    assert workload.alarms_injected == workload.injected // 4


def test_update_workload_values_always_change():
    sim, system = make_system()
    seen = []
    original = system.frontend.inject_update
    system.frontend.inject_update = lambda item, value: seen.append(value) or original(
        item, value
    )
    workload = UpdateWorkload(sim, system.frontend, ["s0"], rate=100.0)
    workload.start(duration=0.5)
    sim.run(until=sim.now + 1.0)
    assert all(a != b for a, b in zip(seen, seen[1:]))


def test_update_workload_stop():
    sim, system = make_system()
    workload = UpdateWorkload(sim, system.frontend, ["s0"], rate=100.0)
    workload.start()
    sim.run(until=sim.now + 0.5)
    workload.stop()
    count = workload.injected
    sim.run(until=sim.now + 1.0)
    assert workload.injected == count


def test_update_workload_validation():
    sim, system = make_system()
    with pytest.raises(ValueError):
        UpdateWorkload(sim, system.frontend, ["s0"], rate=0)
    with pytest.raises(ValueError):
        UpdateWorkload(sim, system.frontend, ["s0"], rate=10, alarm_ratio=2.0)
    with pytest.raises(ValueError):
        UpdateWorkload(sim, system.frontend, [], rate=10)


def test_update_workload_cannot_start_twice():
    sim, system = make_system()
    workload = UpdateWorkload(sim, system.frontend, ["s0"], rate=10)
    workload.start(duration=0.1)
    with pytest.raises(RuntimeError):
        workload.start(duration=0.1)


# -- WriteWorkload -------------------------------------------------------------


def test_write_workload_closed_loop():
    sim, system = make_system()
    workload = WriteWorkload(sim, system.hmi, "act")
    workload.start(duration=0.5)
    sim.run(stop_on=workload.done, until=sim.now + 30)
    assert workload.completed > 10
    assert workload.failed == 0
    assert len(workload.latencies) == workload.completed
    assert workload.latencies.mean > 0


def test_write_workload_counts_failures():
    sim, system = make_system()
    workload = WriteWorkload(sim, system.hmi, "nonexistent-item")
    workload.start(duration=0.2)
    sim.run(stop_on=workload.done, until=sim.now + 30)
    assert workload.completed == 0
    assert workload.failed > 0


# -- metrics -----------------------------------------------------------------------


def test_throughput_meter_window():
    sim = Simulator()
    counter = {"n": 0}
    meter = ThroughputMeter(sim, lambda: counter["n"])

    def ticker():
        while True:
            yield sim.timeout(0.01)
            counter["n"] += 1

    sim.process(ticker())
    sim.run(until=1.0)
    meter.open_window()
    sim.run(until=3.0)
    meter.close_window()
    assert meter.duration == pytest.approx(2.0)
    assert meter.rate == pytest.approx(100.0, rel=0.02)


def test_throughput_meter_requires_window():
    sim = Simulator()
    meter = ThroughputMeter(sim, lambda: 0)
    with pytest.raises(RuntimeError):
        _ = meter.count


def test_latency_recorder_percentiles():
    recorder = LatencyRecorder()
    for value in range(1, 101):
        recorder.record(value / 100)
    assert recorder.mean == pytest.approx(0.505)
    assert recorder.p50 == pytest.approx(0.505)
    assert recorder.percentile(0) == pytest.approx(0.01)
    assert recorder.percentile(100) == pytest.approx(1.0)
    assert recorder.p99 > recorder.p50


def test_latency_recorder_edge_cases():
    recorder = LatencyRecorder()
    assert math.isnan(recorder.mean)
    assert math.isnan(recorder.p50)
    recorder.record(0.5)
    assert recorder.p50 == 0.5
    with pytest.raises(ValueError):
        recorder.record(-1)
    with pytest.raises(ValueError):
        recorder.percentile(101)
    summary = recorder.summary()
    assert summary["count"] == 1 and summary["max"] == 0.5
