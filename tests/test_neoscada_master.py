"""Focused unit tests for the SCADA Master's deterministic core."""

import pytest

from repro.neoscada import (
    DataValue,
    HandlerChain,
    ItemUpdate,
    Monitor,
    MasterCosts,
    Scale,
    ScadaMaster,
    WriteResult,
    WriteValue,
)
from repro.neoscada.messages import BrowseReply, Subscribe
from repro.net import ConstantLatency, Network
from repro.sim import Simulator


def make_master(workers=0, **kwargs):
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.0001))
    sent = []
    master = ScadaMaster(
        sim,
        net,
        "master",
        frontends=["frontend-0"],
        workers=workers,
        jitter=0.0,
        transport=lambda dst, message: sent.append((dst, message)),
        **kwargs,
    )
    return sim, master, sent


def subscribe_hmi(master):
    master.classify(Subscribe(subscriber="hmi", item_id="*"), "hmi")


def test_classify_sorts_data_plane_kinds():
    _sim, master, _sent = make_master()
    assert master.classify(ItemUpdate("i", DataValue(1)), "fe") == "update"
    assert (
        master.classify(WriteValue("i", 1, "op", "hmi"), "hmi") == "write"
    )
    assert (
        master.classify(WriteResult("i", "op", True), "fe") == "write_result"
    )


def test_classify_handles_control_plane_inline():
    _sim, master, _sent = make_master()
    assert master.classify(Subscribe(subscriber="hmi", item_id="*"), "hmi") is None
    assert master.da_server.subscriptions.is_subscribed("hmi", "*")


def test_classify_learns_directory_from_browse():
    _sim, master, _sent = make_master()
    reply = BrowseReply(items=(("sensor", False), ("valve", True)))
    assert master.classify(reply, "frontend-0") is None
    assert master.items.get("valve").writable
    assert master.item_frontend == {
        "sensor": "frontend-0",
        "valve": "frontend-0",
    }


def test_execute_update_publishes_and_learns_source():
    _sim, master, sent = make_master()
    subscribe_hmi(master)
    outcome = master.execute("update", ItemUpdate("s", DataValue(5)), "frontend-0")
    assert outcome.kind == "update"
    assert master.items.get("s").value.value == 5
    assert master.item_frontend["s"] == "frontend-0"
    assert sent == [("hmi", ItemUpdate("s", DataValue(5)))]


def test_execute_update_runs_handler_chain():
    _sim, master, sent = make_master()
    subscribe_hmi(master)
    master.attach_handlers("s", HandlerChain([Scale(0.5), Monitor(high=10.0)]))
    outcome = master.execute("update", ItemUpdate("s", DataValue(50)), "frontend-0")
    assert master.items.get("s").value.value == 25.0
    assert len(outcome.events) == 1  # 25 > 10
    # Events are NOT persisted by execute(); commit_events does that.
    assert master.storage.total_written == 0
    master.commit_events(outcome.events)
    assert master.storage.total_written == 1


def test_wildcard_default_chain_applies():
    _sim, master, _sent = make_master()
    master.attach_handlers("*", HandlerChain([Scale(2.0)]))
    master.execute("update", ItemUpdate("anything", DataValue(3)), "fe")
    assert master.items.get("anything").value.value == 6.0


def test_write_forwards_to_owning_frontend():
    _sim, master, sent = make_master()
    master.classify(BrowseReply(items=(("valve", True),)), "frontend-0")
    outcome = master.execute(
        "write", WriteValue("valve", 1, "hmi:op1", "hmi", "alice"), "hmi"
    )
    assert outcome.forwarded
    assert outcome.master_op in master.pending_writes
    dst, message = sent[-1]
    assert dst == "frontend-0"
    assert isinstance(message, WriteValue)
    assert message.op_id == outcome.master_op
    assert message.reply_to == "master"
    assert message.operator == "alice"


def test_write_result_routes_back_to_origin():
    _sim, master, sent = make_master()
    master.classify(BrowseReply(items=(("valve", True),)), "frontend-0")
    outcome = master.execute(
        "write", WriteValue("valve", 1, "hmi:op1", "hmi", "alice"), "hmi"
    )
    sent.clear()
    master.execute(
        "write_result", WriteResult("valve", outcome.master_op, True), "frontend-0"
    )
    assert sent == [("hmi", WriteResult("valve", "hmi:op1", True, ""))]
    assert not master.pending_writes


def test_unknown_write_result_is_ignored():
    _sim, master, sent = make_master()
    outcome = master.execute(
        "write_result", WriteResult("valve", "ghost", True), "frontend-0"
    )
    assert outcome.events == []
    assert sent == []


def test_audit_writes_produces_event():
    _sim, master, _sent = make_master(audit_writes=True)
    master.classify(BrowseReply(items=(("valve", True),)), "frontend-0")
    outcome = master.execute(
        "write", WriteValue("valve", 1, "op", "hmi", "alice"), "hmi"
    )
    result = master.execute(
        "write_result", WriteResult("valve", outcome.master_op, True), "frontend-0"
    )
    assert [e.event_type for e in result.events] == ["write-completed"]


def test_failed_write_result_always_produces_event():
    _sim, master, _sent = make_master(audit_writes=False)
    master.classify(BrowseReply(items=(("valve", True),)), "frontend-0")
    outcome = master.execute(
        "write", WriteValue("valve", 1, "op", "hmi", "alice"), "hmi"
    )
    result = master.execute(
        "write_result",
        WriteResult("valve", outcome.master_op, False, "rtu fault"),
        "frontend-0",
    )
    assert [e.event_type for e in result.events] == ["write-failed"]


def test_cost_of_includes_chain_and_serialization():
    costs = MasterCosts(serialization=0.001)
    _sim, master, _sent = make_master(costs=costs)
    chain = HandlerChain([Scale(), Monitor(high=1.0)])
    master.attach_handlers("s", chain)
    base = master.cost_of("update", "other-item")
    with_chain = master.cost_of("update", "s")
    assert with_chain == pytest.approx(base + chain.cost)
    assert base == pytest.approx(costs.update_processing + costs.serialization)


def test_injected_clock_and_event_ids_are_used():
    stamps = iter([111.0, 222.0])
    ids = iter(["id-a", "id-b"])
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.0001))
    master = ScadaMaster(
        sim,
        net,
        "master",
        frontends=[],
        workers=0,
        clock=lambda: next(stamps),
        event_id_source=lambda: next(ids),
        transport=lambda dst, m: None,
    )
    master.attach_handlers("s", HandlerChain([Monitor(high=1.0)]))
    outcome = master.execute("update", ItemUpdate("s", DataValue(99)), "fe")
    event = outcome.events[0]
    assert event.timestamp == 111.0
    assert event.event_id == "id-a"


def test_state_tuple_roundtrip_restores_everything():
    _sim, master, _sent = make_master()
    master.attach_handlers("s", HandlerChain([Monitor(high=10.0)]))
    master.classify(BrowseReply(items=(("valve", True), ("s", False))), "frontend-0")
    outcome = master.execute("update", ItemUpdate("s", DataValue(50)), "frontend-0")
    master.commit_events(outcome.events)
    write_outcome = master.execute(
        "write", WriteValue("valve", 1, "op", "hmi", "alice"), "hmi"
    )
    state = master.state_tuple()

    _sim2, other, _sent2 = make_master()
    other.attach_handlers("s", HandlerChain([Monitor(high=10.0)]))
    other.install_state(state)
    assert other.state_tuple() == state
    assert other.items.get("s").value.value == 50
    assert other.pending_writes == master.pending_writes
    assert other.storage.total_written == 1
    assert other.chains["s"].handlers[0].in_alarm
    assert write_outcome.master_op in other.pending_writes


def test_state_tuples_identical_for_identical_histories():
    def run():
        _sim, master, _sent = make_master()
        master.attach_handlers("s", HandlerChain([Monitor(high=10.0)]))
        master.classify(BrowseReply(items=(("valve", True),)), "frontend-0")
        master.clock = lambda: 5.0
        for i in range(20):
            outcome = master.execute(
                "update", ItemUpdate("s", DataValue(i * 3)), "frontend-0"
            )
            master.commit_events(outcome.events)
        return master.state_tuple()

    assert run() == run()


def test_replicated_mode_requires_workers_zero():
    from repro.core.adapter import ScadaService
    from repro.core.context import ContextInfo

    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.0001))
    master = ScadaMaster(sim, net, "m", frontends=[], workers=2)
    with pytest.raises(ValueError):
        ScadaService(master, ContextInfo())
