"""Focused tests for the state-transfer protocol."""

import pytest

from repro.bftsmart import (
    CounterService,
    GroupConfig,
    StateReply,
    StateRequest,
    build_group,
    build_proxy,
)
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network
from repro.sim import Simulator
from repro.wire import decode, encode


def make_world(seed=1, checkpoint_interval=5, **extra):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.0003))
    keystore = KeyStore()
    config = GroupConfig(
        n=4, f=1, checkpoint_interval=checkpoint_interval,
        request_timeout=0.5, **extra
    )
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    return sim, net, replicas, proxy


def run_adds(sim, proxy, count):
    def client():
        result = None
        for _ in range(count):
            raw = yield proxy.invoke_ordered(encode(("add", 1)))
            result = decode(raw)
        return result

    return sim.run_process(client(), until=sim.now + 120)


def converge(sim, replicas, seconds=10.0):
    deadline = sim.now + seconds
    while sim.now < deadline:
        sim.run(until=sim.now + 0.5)
        if len({r.last_decided for r in replicas}) == 1:
            return True
    return False


def test_recovering_replica_replays_from_checkpoint_plus_log():
    sim, net, replicas, proxy = make_world()
    net.crash("replica-3")
    run_adds(sim, proxy, 12)  # checkpoints at cid 4 and 9
    net.recover("replica-3")
    run_adds(sim, proxy, 1)
    assert converge(sim, replicas)
    assert replicas[3].service.value == 13
    assert replicas[3].state_transfer.completed >= 1
    # It replayed from a checkpoint, not from genesis.
    assert replicas[3].checkpoint_cid >= 4


def test_fresh_replica_can_join_from_genesis():
    sim, net, replicas, proxy = make_world(checkpoint_interval=1000)
    net.crash("replica-2")
    run_adds(sim, proxy, 8)
    net.recover("replica-2")
    run_adds(sim, proxy, 1)
    assert converge(sim, replicas)
    # No checkpoint ever happened: the full decision log replayed.
    assert replicas[2].service.value == 9


def test_state_requests_are_answered_by_peers():
    sim, net, replicas, proxy = make_world()
    run_adds(sim, proxy, 7)
    served_before = replicas[0].channel.rejected
    # A replica explicitly asks for state.
    replicas[3].state_transfer.notice_gap(100)
    sim.run(until=sim.now + 2)
    # It got answers (grouping may or may not install given the fake gap).
    assert len(replicas[3].state_transfer._replies) >= 2


def test_single_lying_state_reply_cannot_install():
    """State installs need f+1 identical replies; one forged reply from a
    Byzantine peer is never enough and never matches the honest ones."""
    sim, net, replicas, proxy = make_world()
    run_adds(sim, proxy, 6)
    # Knock replica-3 out and let it recover while replica-0 forges its
    # state replies (drop them instead: an opaque Sealed tamper would just
    # fail the MAC, which is equivalent for the vote).
    from repro.net import Drop

    net.crash("replica-3")
    run_adds(sim, proxy, 6)
    net.faults.add(Drop(src="replica-0", kind="StateReply"))
    net.recover("replica-3")
    run_adds(sim, proxy, 1)
    assert converge(sim, replicas)
    # Two honest replies (replica-1, replica-2) still satisfy f+1 = 2.
    assert replicas[3].service.value == 13


def test_stale_gap_notice_aborts_cleanly():
    sim, net, replicas, proxy = make_world()
    run_adds(sim, proxy, 5)
    replica = replicas[1]
    # Claim a gap at a cid everyone has already decided.
    replica.state_transfer._last_request_at = -1000.0
    replica.state_transfer.notice_gap(replica.next_cid + 1)
    sim.run(until=sim.now + 2)
    assert not replica.state_transfer.in_progress
    # State unchanged, no bogus rollback.
    assert replica.service.value == 5


def test_retry_interval_comes_from_group_config():
    """The retry pace is deployment configuration, not a class constant."""
    sim, net, replicas, proxy = make_world(state_retry_interval=0.125)
    for replica in replicas:
        assert replica.state_transfer.retry_interval == 0.125
    with pytest.raises(ValueError):
        GroupConfig(n=4, f=1, state_retry_interval=0.0)


def test_retry_interval_throttles_repeat_requests():
    sim, net, replicas, proxy = make_world(state_retry_interval=5.0)
    run_adds(sim, proxy, 3)
    replica = replicas[1]
    transfer = replica.state_transfer
    transfer._last_request_at = sim.now  # as if a request just went out
    served_before = sum(r.state_transfer.full_served +
                        r.state_transfer.partial_served for r in replicas)
    transfer.notice_gap(replica.next_cid + 3)
    sim.run(until=sim.now + 1)
    # Inside the interval: no new request hit the wire, a retry is armed.
    served_after = sum(r.state_transfer.full_served +
                       r.state_transfer.partial_served for r in replicas)
    assert served_after == served_before
    assert transfer._retry_scheduled


def test_notice_gap_force_requests_at_the_waiting_slot():
    """``force=True`` (the retry path) must re-request even when the
    observed cid equals ``next_cid``: that instance may have decided at
    the peers during our install, after which no further traffic would
    ever re-open the gap."""
    sim, net, replicas, proxy = make_world()
    run_adds(sim, proxy, 4)
    replica = replicas[2]
    transfer = replica.state_transfer
    transfer._last_request_at = -1000.0

    transfer.notice_gap(replica.next_cid)  # not a gap without force
    assert not transfer.in_progress
    transfer.notice_gap(replica.next_cid, force=True)
    assert transfer.in_progress


def test_transfer_completing_during_leader_change_adopts_new_view():
    """A recovering replica whose transfer lands while the group is
    electing a new leader must adopt the regency its peers converged on
    and keep participating (retry-driven re-request included)."""
    sim, net, replicas, proxy = make_world(state_retry_interval=0.2)
    # The straggler misses a stretch of decisions...
    net.crash("replica-3")
    run_adds(sim, proxy, 6)
    net.recover("replica-3")
    # ...and the instant it returns, the leader dies: its state transfer
    # now races the regency election (quorum needs the straggler, so the
    # group only makes progress once its transfer lands and it votes).
    net.crash("replica-0")
    run_adds(sim, proxy, 3)
    live = [r for r in replicas if r.address != "replica-0"]
    deadline = sim.now + 30
    while sim.now < deadline:
        sim.run(until=sim.now + 0.5)
        if len({r.last_decided for r in live}) == 1:
            break
    assert len({r.last_decided for r in live}) == 1
    straggler = replicas[3]
    assert straggler.service.value == replicas[1].service.value == 9
    assert straggler.state_transfer.completed >= 1
    # It converged onto the post-election regency, not the stale one.
    top = max(r.synchronizer.regency for r in live)
    assert top > 0
    assert straggler.synchronizer.regency == top
