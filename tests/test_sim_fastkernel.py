"""Ring-kernel specifics: timer wheel, slot recycling, handle safety.

The cross-kernel behaviour contract is covered by running the whole
suite under ``REPRO_KERNEL=ring`` (the CI parity job) and by
``tests/test_kernel_parity.py``; these tests pin down the mechanisms
unique to the flat-array kernel — same-tick FIFO inside one wheel
bucket, stale handles against recycled slots, rotation across bucket
boundaries, far-heap migration and slot-capacity growth.
"""

import pytest

from repro.sim import RingSimulator, SimulationError, Simulator

TICK = RingSimulator.TICK
NSLOTS = RingSimulator.NSLOTS
HORIZON = TICK * NSLOTS


def both_kernels(workload):
    """Run ``workload(sim, fired)`` on both kernels; return both traces."""
    traces = []
    for kernel in ("heap", "ring"):
        sim = Simulator(kernel=kernel)
        fired = []
        workload(sim, fired)
        sim.run()
        traces.append(fired)
    return traces


def test_same_tick_fifo_matches_heap_kernel():
    # Many occurrences at the same instant, mixed across the three
    # scheduling APIs: creation order is dispatch order, on both kernels.
    def workload(sim, fired):
        for i in range(30):
            if i % 3 == 0:
                sim.defer(0.25, fired.append, i)
            elif i % 3 == 1:
                sim.timer(0.25, fired.append, i)
            else:
                sim.call_later(0.25, fired.append, i)

    heap_trace, ring_trace = both_kernels(workload)
    assert ring_trace == heap_trace == list(range(30))


def test_cancelled_slot_reuse_never_fires_stale_callable():
    sim = RingSimulator()
    stale = []
    live = []
    handles = [sim.timer(1.0, stale.append, i) for i in range(50)]
    for handle in handles:
        assert sim.cancel_timer(handle) is True
    # Run past the cancelled deadline so every dead slot is consumed and
    # recycled, then re-arm new timers into the recycled slots.
    sim.run(until=2.0)
    for i in range(50):
        sim.timer(1.0, live.append, i)
    # The old handles point at recycled slots now: cancelling through
    # them must not touch the new occupants (generation check).
    for handle in handles:
        assert sim.cancel_timer(handle) is False
    sim.run()
    assert stale == []
    assert live == list(range(50))


def test_cancel_through_stale_handle_after_fire_is_noop():
    sim = RingSimulator()
    fired = []
    handle = sim.timer(0.5, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.cancel_timer(handle) is False
    # Slot gets reused; the stale handle still refuses.
    sim.timer(0.5, fired.append, "b")
    assert sim.cancel_timer(handle) is False
    sim.run()
    assert fired == ["a", "b"]


def test_wheel_rotation_across_bucket_boundaries():
    # Deadlines straddling bucket edges, including exact k*TICK
    # boundaries and sub-tick offsets: global dispatch order must be by
    # time with FIFO ties, identical on both kernels.
    delays = []
    for k in (1, 2, 3, 5, 8, 13):
        delays += [k * TICK, k * TICK + 1e-7, k * TICK - 1e-7, k * TICK + TICK / 2]
    delays += [0.0, TICK / 3, 17 * TICK, 17 * TICK]

    def workload(sim, fired):
        for i, delay in enumerate(delays):
            sim.defer(delay, lambda i=i: fired.append((round(sim.now, 9), i)))

    heap_trace, ring_trace = both_kernels(workload)
    assert ring_trace == heap_trace
    assert [t for t, _ in ring_trace] == sorted(t for t, _ in ring_trace)


def test_rotation_reuses_wheel_slots_across_turns():
    # A periodic task stepping one bucket per firing for well over one
    # full wheel turn: every wrap lands in a bucket index already used
    # by the previous turn.
    sim = RingSimulator()
    count = [0]
    total = NSLOTS + NSLOTS // 2  # 1.5 turns

    def step():
        count[0] += 1
        if count[0] < total:
            sim.defer(TICK, step)

    sim.defer(TICK, step)
    sim.run()
    assert count[0] == total
    assert sim.now == pytest.approx(total * TICK)


def test_far_heap_migration_preserves_order():
    # Deadlines beyond the wheel horizon live on the far heap and must
    # interleave correctly with near deadlines once the wheel catches up.
    def workload(sim, fired):
        sim.defer(HORIZON * 2.5, fired.append, "far2")
        sim.defer(0.5, fired.append, "near")
        sim.defer(HORIZON * 1.25, fired.append, "far1")
        sim.timer(HORIZON + TICK / 2, fired.append, "far0")

    heap_trace, ring_trace = both_kernels(workload)
    assert ring_trace == heap_trace == ["near", "far0", "far1", "far2"]


def test_cancelled_far_timer_never_fires():
    sim = RingSimulator()
    fired = []
    handle = sim.timer(HORIZON * 2, fired.append, "stale")
    sim.defer(1.0, fired.append, "ok")
    assert sim.cancel_timer(handle) is True
    sim.run()
    assert fired == ["ok"]
    assert sim.stats()["heap_pending"] == 0


def test_until_stops_mid_bucket_and_resumes():
    sim = RingSimulator()
    fired = []
    # Three occurrences inside one bucket; stop between them.
    base = 5 * TICK
    sim.defer(base + 0.1 * TICK, fired.append, "a")
    sim.defer(base + 0.5 * TICK, fired.append, "b")
    sim.defer(base + 0.9 * TICK, fired.append, "c")
    sim.run(until=base + 0.6 * TICK)
    assert fired == ["a", "b"]
    assert sim.now == base + 0.6 * TICK
    # Scheduling something earlier than the un-consumed entry while
    # stopped must not reorder the resumed dispatch.
    sim.defer(0.1 * TICK, fired.append, "between")
    sim.run()
    assert fired == ["a", "b", "between", "c"]


def test_peek_parity_with_heap():
    for kernel in ("heap", "ring"):
        sim = Simulator(kernel=kernel)
        assert sim.peek() is None
        sim.defer(2.0, lambda: None)
        first = sim.call_later(1.0, lambda: None)
        far = sim.timer(HORIZON * 3, lambda: None)
        assert sim.peek() == 1.0
        first.cancel()
        assert sim.peek() == 2.0
        sim.run(until=2.5)
        assert sim.peek() == HORIZON * 3
        sim.cancel_timer(far)
        assert sim.peek() is None


def test_slot_capacity_grows_on_demand():
    sim = RingSimulator()
    fired = []
    count = 10_000  # > initial capacity of 4096 concurrent slots
    for i in range(count):
        sim.timer(1.0 + (i % 7) * 0.001, fired.append, i)
    stats = sim.stats()
    assert stats["slot_capacity"] >= count
    sim.run()
    assert len(fired) == count
    assert sim.stats()["slots_free"] == sim.stats()["slot_capacity"]


def test_priority_orders_same_time_entries():
    def workload(sim, fired):
        for label, priority in (("n0", 0), ("hi", -5), ("lo", 5), ("n1", 0)):
            event = sim.event()
            event.add_callback(lambda ev: fired.append(ev.value))
            event._value = label
            sim._enqueue(1.0, event, priority)

    heap_trace, ring_trace = both_kernels(workload)
    assert ring_trace == heap_trace == ["hi", "n0", "n1", "lo"]


def test_ring_priority_range_is_validated():
    sim = RingSimulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        sim._enqueue(0.0, event, priority=64)
    with pytest.raises(SimulationError):
        sim._enqueue(0.0, sim.event(), priority=-65)


def test_unknown_kernel_is_rejected():
    with pytest.raises(ValueError):
        Simulator(kernel="wheel-of-fortune")


def test_ring_stats_keys_superset_of_heap():
    heap_keys = set(Simulator(kernel="heap").stats())
    ring_keys = set(Simulator(kernel="ring").stats())
    assert heap_keys <= ring_keys
