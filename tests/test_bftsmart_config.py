"""Unit tests for group configuration and views."""

import pytest

from repro.bftsmart import GroupConfig, View, replica_address


def test_default_config_is_4_replicas_f1():
    cfg = GroupConfig()
    assert cfg.n == 4
    assert cfg.f == 1
    assert cfg.addresses == ("replica-0", "replica-1", "replica-2", "replica-3")


def test_n_must_satisfy_bft_bound():
    with pytest.raises(ValueError):
        GroupConfig(n=3, f=1)
    GroupConfig(n=4, f=1)
    GroupConfig(n=7, f=2)
    with pytest.raises(ValueError):
        GroupConfig(n=6, f=2)


def test_negative_f_rejected():
    with pytest.raises(ValueError):
        GroupConfig(n=1, f=-1)


def test_quorum_sizes_match_bft_smart():
    cfg = GroupConfig(n=4, f=1)
    assert cfg.write_quorum == 3  # 2f+1
    assert cfg.accept_quorum == 3
    assert cfg.stop_quorum == 3
    assert cfg.stop_join_threshold == 2
    assert cfg.stop_data_quorum == 3
    assert cfg.reply_quorum == 2  # f+1
    assert cfg.unordered_quorum == 3

    cfg7 = GroupConfig(n=7, f=2)
    assert cfg7.write_quorum == 5
    assert cfg7.reply_quorum == 3


def test_explicit_addresses_validated():
    GroupConfig(n=4, f=1, addresses=("a", "b", "c", "d"))
    with pytest.raises(ValueError):
        GroupConfig(n=4, f=1, addresses=("a", "b"))


def test_batch_max_positive():
    with pytest.raises(ValueError):
        GroupConfig(batch_max=0)


def test_replica_address_format():
    assert replica_address(3) == "replica-3"


def test_view_leader_rotation():
    view = View(0, ("a", "b", "c", "d"), 1)
    assert view.leader_for(0) == "a"
    assert view.leader_for(1) == "b"
    assert view.leader_for(4) == "a"
    assert view.leader_for(7) == "d"


def test_view_membership_queries():
    view = View(0, ("a", "b", "c", "d"), 1)
    assert view.n == 4
    assert view.contains("c")
    assert not view.contains("z")
    assert view.index_of("b") == 1


def test_view_respects_bft_bound():
    with pytest.raises(ValueError):
        View(0, ("a", "b", "c"), 1)
