"""Property tests for the codec caching layer.

The hot-path performance pass memoizes encodings, shares string chunks
and seeds decode results — all of which is only sound if the codec is
*canonical*: equal values must produce identical bytes no matter which
code path (fresh codec, memoized, legacy) produced them. These tests
sweep every type registered in :data:`GLOBAL_REGISTRY` with generated
sample instances and assert exactly that.
"""

from __future__ import annotations

import copy
import dataclasses
import enum
import types
import typing

import pytest

# Import every module that registers wire types so the sweep below sees
# the full registry, not just whatever earlier tests happened to import.
import repro.bftsmart.messages  # noqa: F401
import repro.bftsmart.view  # noqa: F401
import repro.neoscada.ae.events  # noqa: F401
import repro.neoscada.messages  # noqa: F401
import repro.neoscada.protocols.iec104  # noqa: F401
import repro.neoscada.protocols.modbus  # noqa: F401
import repro.neoscada.values  # noqa: F401
from repro.bftsmart.messages import ClientRequest
from repro.bftsmart.view import View
from repro.crypto.digest import digest
from repro.perf import PERF, clear_hot_path_caches, hot_path_optimizations
from repro.wire import GLOBAL_REGISTRY, Codec, decode, encode, encode_cached

#: Types whose ``__post_init__`` rejects naive generated field values.
_OVERRIDES = {
    View: lambda salt: View(
        view_id=salt, addresses=(f"r0-{salt}", "r1", "r2", "r3"), f=1
    ),
}


def _sample_value(annotation, salt: int):
    """A deterministic sample value for one resolved field annotation."""
    origin = typing.get_origin(annotation)
    if origin in (typing.Union, types.UnionType):
        for arg in typing.get_args(annotation):
            if arg is not type(None):
                return _sample_value(arg, salt)
        return None
    if annotation is str:
        return f"s{salt}"
    if annotation is int:
        return 41 + salt
    if annotation is float:
        return 0.5 + salt
    if annotation is bool:
        return salt % 2 == 0
    if annotation is bytes:
        return bytes([salt % 256]) * 3
    if annotation is tuple or origin is tuple:
        return (f"t{salt}", salt)
    if annotation is dict or origin is dict:
        return {f"k{salt}": bytes([salt % 256]) * 16}
    if isinstance(annotation, type) and issubclass(annotation, enum.Enum):
        members = list(annotation)
        return members[salt % len(members)]
    if isinstance(annotation, type) and dataclasses.is_dataclass(annotation):
        return sample_instance(annotation, salt)
    # ``object``-annotated fields hold scalars on the wire.
    return salt


def sample_instance(cls: type, salt: int = 0):
    """Build a deterministic sample instance of a registered wire type."""
    override = _OVERRIDES.get(cls)
    if override is not None:
        return override(salt)
    if issubclass(cls, enum.Enum):
        members = list(cls)
        return members[salt % len(members)]
    hints = typing.get_type_hints(cls)
    kwargs = {
        field.name: _sample_value(hints.get(field.name, object), salt + i)
        for i, field in enumerate(dataclasses.fields(cls))
    }
    return cls(**kwargs)


_REGISTERED = sorted(GLOBAL_REGISTRY._by_id.items())


def _ids():
    return [f"{tid}-{cls.__name__}" for tid, cls in _REGISTERED]


def test_registry_sweep_is_nontrivial():
    # Guard against silently sweeping an empty registry if imports move.
    assert len(_REGISTERED) >= 40


@pytest.mark.parametrize(("tid", "cls"), _REGISTERED, ids=_ids())
def test_encode_is_canonical_across_copies(tid, cls):
    """``encode(x) == encode(deepcopy(x))`` — equal values, equal bytes."""
    for salt in (0, 7):
        original = sample_instance(cls, salt)
        clone = copy.deepcopy(original)
        assert encode(original) == encode(clone)


@pytest.mark.parametrize(("tid", "cls"), _REGISTERED, ids=_ids())
def test_encode_decode_round_trip(tid, cls):
    original = sample_instance(cls, 3)
    decoded = decode(encode(original))
    assert type(decoded) is cls
    assert decoded == original


@pytest.mark.parametrize(("tid", "cls"), _REGISTERED, ids=_ids())
def test_memoized_encode_matches_fresh_codec(tid, cls):
    """The memoized path must be byte-identical to an uncached codec.

    Three encoders are compared: ``encode_cached`` with every switch on
    (memo + string-chunk cache + varint fast paths), a brand-new
    :class:`Codec` instance (no shared state), and the legacy path with
    every optimisation switch off.
    """
    original = sample_instance(cls, 5)
    clear_hot_path_caches()
    with hot_path_optimizations(True):
        cached = encode_cached(original).payload
        fresh = Codec(GLOBAL_REGISTRY).encode(original)
    with hot_path_optimizations(False):
        legacy = encode(original)
    assert cached == fresh == legacy


def test_encode_cached_memo_returns_same_object():
    clear_hot_path_caches()
    request = sample_instance(ClientRequest, 1)
    with hot_path_optimizations(True):
        stats = PERF.stats["codec_encode"]
        hits_before = stats.hits
        first = encode_cached(request)
        second = encode_cached(request)
        assert second is first  # identity-keyed memo hit
        assert stats.hits == hits_before + 1
        # An equal but distinct object is *not* a memo hit (identity
        # keyed), yet still encodes to identical bytes.
        twin = copy.deepcopy(request)
        assert encode_cached(twin).payload == first.payload


def test_encode_cached_disabled_is_uncached_but_identical():
    request = sample_instance(ClientRequest, 2)
    with hot_path_optimizations(False):
        first = encode_cached(request)
        second = encode_cached(request)
        assert second is not first
        assert second.payload == first.payload


def test_encoded_message_digest_is_content_digest():
    clear_hot_path_caches()
    message = sample_instance(ClientRequest, 4)
    encoded = encode_cached(message)
    with hot_path_optimizations(False):
        expected = digest(encoded.payload)
    assert encoded.digest == expected


def test_string_chunk_cache_shares_no_state_across_values():
    """Repeated strings hit the chunk cache; bytes must stay per-value."""
    clear_hot_path_caches()
    with hot_path_optimizations(True):
        a = sample_instance(ClientRequest, 1)
        b = dataclasses.replace(a, sequence=a.sequence + 1)
        warm_a, warm_b = encode(a), encode(b)  # warm the chunk cache
        assert (encode(a), encode(b)) == (warm_a, warm_b)
    with hot_path_optimizations(False):
        assert (encode(a), encode(b)) == (warm_a, warm_b)
    assert warm_a != warm_b
