"""Tests for the IEC-104-style protocol, the event-driven RTU, and the
frontend integration (spontaneous transmission vs. polling)."""

import pytest

from repro.core import build_neoscada, build_smartscada, make_network
from repro.neoscada import Frontend, HandlerChain, Scale
from repro.neoscada.field import PowerFeeder
from repro.neoscada.field.powergrid import BREAKER, VOLTAGE
from repro.neoscada.protocols.iec104 import (
    CommandConfirm,
    Iec104Client,
    InterrogationReply,
    SpontaneousUpdate,
)
from repro.neoscada.rtu104 import Iec104RTU
from repro.net import ConstantLatency, Network
from repro.sim import Simulator


def make_world():
    sim = Simulator(seed=9)
    net = Network(sim, latency=ConstantLatency(0.0002))
    return sim, net


def make_client(sim, net, name="master-station"):
    endpoint = net.endpoint(name)
    client = Iec104Client(name, endpoint.send)
    endpoint.set_handler(lambda message, src: client.dispatch(message, src))
    return client


def test_general_interrogation_returns_snapshot():
    sim, net = make_world()
    rtu = Iec104RTU(sim, net, "sub-1")
    rtu.points.update({1: 100, 2: 200})
    client = make_client(sim, net)
    replies = []
    client.interrogate("sub-1", replies.append)
    sim.run(until=1.0)
    assert isinstance(replies[0], InterrogationReply)
    assert [(ioa, value) for ioa, value, _t in replies[0].points] == [(1, 100), (2, 200)]


def test_spontaneous_updates_pushed_to_subscribers():
    sim, net = make_world()
    rtu = Iec104RTU(sim, net, "sub-1")
    rtu.points[1] = 10
    client = make_client(sim, net)
    pushed = []
    client.on_spontaneous = lambda src, update: pushed.append((src, update))
    client.start_data_transfer("sub-1")
    sim.run(until=0.5)
    rtu.set_point(1, 42)
    sim.run(until=1.0)
    assert len(pushed) >= 1
    src, update = pushed[-1]
    assert src == "sub-1"
    assert update.ioa == 1 and update.value == 42


def test_deadband_suppresses_small_changes():
    sim, net = make_world()
    rtu = Iec104RTU(sim, net, "sub-1", deadband=5)
    rtu.points[1] = 100
    client = make_client(sim, net)
    pushed = []
    client.on_spontaneous = lambda src, update: pushed.append(update.value)
    client.start_data_transfer("sub-1")
    sim.run(until=0.1)
    rtu.set_point(1, 100)  # first report establishes the baseline
    sim.run(until=0.2)
    rtu.set_point(1, 103)  # within deadband of the baseline
    rtu.set_point(1, 120)  # beyond
    sim.run(until=1.0)
    assert 103 not in pushed
    assert 120 in pushed


def test_command_confirmation_and_rejection():
    sim, net = make_world()
    rtu = Iec104RTU(sim, net, "sub-1", writable_ioas=(2,))
    rtu.points.update({1: 0, 2: 0})
    client = make_client(sim, net)
    confirms = []
    client.command("sub-1", 2, 1, confirms.append)
    client.command("sub-1", 1, 1, confirms.append)  # not commandable
    client.command("sub-1", 9, 1, confirms.append)  # unknown
    sim.run(until=1.0)
    assert [c.ok for c in confirms] == [True, False, False]
    assert rtu.points[2] == 1
    assert rtu.points[1] == 0
    assert rtu.stats["rejected"] == 2


def test_rtu_steps_field_process_and_reports():
    sim, net = make_world()
    rtu = Iec104RTU(
        sim, net, "sub-1", process=PowerFeeder(noise=0.05), step_interval=0.2
    )
    client = make_client(sim, net)
    pushed = []
    client.on_spontaneous = lambda src, update: pushed.append(update.ioa)
    client.start_data_transfer("sub-1")
    sim.run(until=3.0)
    assert VOLTAGE in pushed  # readings fluctuate and get reported


def test_frontend_iec104_items_flow_to_hmi():
    """End-to-end: substation pushes -> frontend -> master -> HMI,
    with no polling anywhere."""
    sim = Simulator(seed=5)
    net = make_network(sim)
    system = build_neoscada(sim, net=net)
    rtu = Iec104RTU(
        sim,
        net,
        "substation-9",
        process=PowerFeeder(noise=0.0),
        step_interval=0.2,
        writable_ioas=(BREAKER,),
    )
    system.frontend.add_iec104_item("feeder.voltage", "substation-9", VOLTAGE)
    system.frontend.add_iec104_item(
        "feeder.breaker", "substation-9", BREAKER, writable=True
    )
    system.master.attach_handlers("feeder.voltage", HandlerChain([Scale(0.1)]))
    system.start()
    sim.run(until=sim.now + 1.5)
    assert system.hmi.value_of("feeder.voltage") == pytest.approx(230.0, rel=0.05)
    assert system.frontend.stats["polls"] == 0  # event-driven, not polled

    def operator():
        result = yield system.hmi.write("feeder.breaker", 0)
        return result

    result = sim.run_process(operator(), until=sim.now + 5)
    assert result.success
    sim.run(until=sim.now + 1.0)
    assert system.hmi.value_of("feeder.voltage") == 0.0


def test_frontend_iec104_write_timeout():
    sim, net = make_world()
    frontend = Frontend(sim, net, "fe", write_timeout=0.5)
    Iec104RTU(sim, net, "sub-1", writable_ioas=(1,)).points[1] = 0
    frontend.add_iec104_item("act", "sub-1", 1, writable=True)
    net.crash("sub-1")
    results = []
    from repro.neoscada.messages import WriteResult, WriteValue

    collector = net.endpoint("req")
    collector.set_handler(lambda m, src: results.append(m))
    net.endpoint("fe")._deliver(
        WriteValue(item_id="act", value=1, op_id="w1", reply_to="req"), "req"
    )
    sim.run(until=2.0)
    assert len(results) == 1
    assert not results[0].success
    assert "did not confirm" in results[0].reason


def test_iec104_with_replicated_master():
    """The field protocol is orthogonal to the replication machinery."""
    sim = Simulator(seed=6)
    net = make_network(sim)
    system = build_smartscada(sim, net=net)
    Iec104RTU(
        sim, net, "substation-1", process=PowerFeeder(noise=0.0), step_interval=0.25
    )
    system.frontend.add_iec104_item("feeder.voltage", "substation-1", VOLTAGE)
    system.start()
    sim.run(until=sim.now + 2.0)
    assert system.hmi.value_of("feeder.voltage") == pytest.approx(2300, rel=0.05)
    assert len(set(system.state_digests())) == 1
