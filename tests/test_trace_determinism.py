"""Tracing must be behaviour-invisible.

Installing a tracer adds observation, never scheduling: the span hooks
read simulated time and touch tracer-private state only, and the wire
``trace_id`` field is always encoded (as ``""`` when unstamped) so frame
sizes — and therefore size-dependent network latency — are identical
with tracing on or off. A seeded run with a tracer installed must
dispatch the exact same event stream as the same run without one. The
CI determinism job runs this guard.
"""

from repro.bftsmart import CounterService, GroupConfig, build_group, build_proxy
from repro.crypto import KeyStore
from repro.net import LanLatency, Network
from repro.obs.trace import install_tracer
from repro.sim import Simulator
from repro.wire import decode, encode

CLIENTS = 2
REQUESTS_EACH = 25


def run_seeded(traced: bool, seed: int = 7):
    sim = Simulator(seed=seed)
    tracer = install_tracer(sim) if traced else None
    # LanLatency is size-dependent: if tracing changed a single frame's
    # length, delivery times — and the whole schedule — would diverge.
    net = Network(sim, latency=LanLatency(rng=sim.rng.stream("net")))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, batch_max=8, batch_wait=0.0005)
    replicas = build_group(sim, net, config, CounterService, keystore)
    events = []

    def sender(proxy):
        for _ in range(REQUESTS_EACH):
            events.append(proxy.invoke_ordered(encode(("add", 1))))
            yield sim.timeout(0.002)

    for i in range(CLIENTS):
        proxy = build_proxy(
            sim, net, f"client-{i}", config, keystore, invoke_timeout=30.0
        )
        sim.process(sender(proxy))
    sim.run(until=sim.now + 10)
    assert all(event.ok for event in events)
    return sim, tracer, replicas


def decided_stream(replica):
    stream = []
    for _cid, value, _timestamp in replica.decision_log:
        if value == b"":
            continue
        for request in decode(value).requests:
            stream.append((request.client_id, request.sequence))
    return stream


def test_tracing_on_and_off_dispatch_identical_schedules():
    sim_off, _none, replicas_off = run_seeded(traced=False)
    sim_on, tracer, replicas_on = run_seeded(traced=True)

    # Same executed request stream on every replica, across both runs.
    streams_off = [decided_stream(r) for r in replicas_off]
    streams_on = [decided_stream(r) for r in replicas_on]
    assert all(s == streams_off[0] for s in streams_off)
    assert streams_on == streams_off
    assert len(streams_off[0]) == CLIENTS * REQUESTS_EACH

    # Same schedule, event for event, ending at the same instant.
    assert sim_on.dispatched == sim_off.dispatched
    assert sim_on.now == sim_off.now
    assert [r.service.value for r in replicas_on] == [
        r.service.value for r in replicas_off
    ]

    # And the traced run actually observed the workload.
    assert tracer is not None
    assert len(tracer.spans) > 0
    assert any(s.name == "consensus" for s in tracer.spans)


def test_disabled_tracer_is_inert():
    sim, tracer, _replicas = run_seeded(traced=True, seed=9)
    before = len(tracer.spans)
    tracer.enabled = False
    span = None
    if sim.tracer is not None and sim.tracer.enabled:  # the hook guard
        span = sim.tracer.begin("x", "t")
    assert span is None
    assert len(tracer.spans) == before


# ----------------------------------------------------------------------
# sharded deployments: the same invariants across the shard tier
# ----------------------------------------------------------------------

from repro.neoscada import HandlerChain, Monitor  # noqa: E402
from repro.shard import ShardedScadaConfig, build_sharded_scada  # noqa: E402

SENSORS = [f"plant.s{i}" for i in range(6)]


def run_sharded(traced: bool, seed: int = 11):
    """Two BFT groups behind one namespace: updates spanning both
    shards, one operator write and one wildcard event query."""
    sim = Simulator(seed=seed)
    tracer = install_tracer(sim) if traced else None
    net = Network(sim, latency=LanLatency(rng=sim.rng.stream("net")))
    system = build_sharded_scada(
        sim, net=net, config=ShardedScadaConfig(shards=2)
    )
    for sensor in SENSORS:
        system.frontend.add_item(sensor, initial=20)
        system.attach_handlers(
            sensor, lambda: HandlerChain([Monitor(high=80.0)])
        )
    system.frontend.add_item("plant.actuator", initial=0, writable=True)
    system.start()
    outcome = {}

    def updates():
        for rnd in range(3):
            for i, sensor in enumerate(SENSORS):
                value = 90 if (i + rnd) % 3 == 0 else 30
                system.frontend.inject_update(sensor, value)
                yield sim.timeout(0.02)

    def operator():
        yield sim.timeout(0.3)
        result = yield system.hmi.write("plant.actuator", 42)
        outcome["write_ok"] = result.success
        events = yield system.hmi.query_events("*")
        outcome["events"] = len(events)

    sim.process(updates())
    sim.process(operator())
    sim.run(until=2.0)
    system.flush_events()
    sim.run(until=2.5)
    return sim, tracer, system, outcome


def test_sharded_tracing_on_and_off_identical_schedules():
    sim_off, _none, system_off, outcome_off = run_sharded(traced=False)
    sim_on, tracer, system_on, outcome_on = run_sharded(traced=True)
    assert outcome_off["write_ok"] and outcome_off["events"] > 0
    assert outcome_on == outcome_off
    # Byte-identical frames (LanLatency is size-dependent), so the
    # schedule cannot diverge even across the shard tier.
    assert sim_on.dispatched == sim_off.dispatched
    assert sim_on.now == sim_off.now
    stream = lambda s: [  # noqa: E731
        (e.event_id, e.item_id, e.timestamp) for e in s.hmi.events
    ]
    assert stream(system_on) == stream(system_off)
    assert tracer is not None and len(tracer.spans) > 0


def test_write_trace_links_hmi_through_router_to_group():
    _sim, tracer, _system, outcome = run_sharded(traced=True)
    assert outcome["write_ok"]
    roots = [s for s in tracer.spans if s.name == "hmi.write"]
    assert len(roots) == 1
    spans = tracer.spans_for(roots[0].trace_id)
    names = {s.name for s in spans}
    assert {"hmi.write", "proxy.forward", "shard.route"} <= names
    route = next(s for s in spans if s.name == "shard.route")
    shard = route.attrs["shard"]
    assert route.attrs["item"] == "plant.actuator"
    # The consensus work of the owning group is causally linked in.
    group_processes = {
        s.process
        for s in spans
        if s.process.startswith(f"s{shard}-replica")
    }
    assert group_processes, "no replica-side span joined the write trace"


def test_wildcard_query_trace_spans_both_groups():
    _sim, tracer, _system, outcome = run_sharded(traced=True)
    assert outcome["events"] > 0
    scatters = [
        s
        for s in tracer.spans
        if s.name == "shard.scatter" and s.attrs.get("op") == "event-query"
    ]
    assert len(scatters) == 1
    spans = tracer.spans_for(scatters[0].trace_id)
    fanout = [s for s in spans if s.name == "shard.scatter.fanout"]
    assert sorted(s.attrs["shard"] for s in fanout) == [0, 1]
    # One causally-linked trace with replica-side execution on *both*
    # groups: the scatter really fanned out across the fleet.
    executed_on = {
        s.process[:3]
        for s in spans
        if s.name == "request.execute" and s.process.startswith("s")
    }
    assert {"s0-", "s1-"} <= executed_on
