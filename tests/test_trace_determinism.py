"""Tracing must be behaviour-invisible.

Installing a tracer adds observation, never scheduling: the span hooks
read simulated time and touch tracer-private state only, and the wire
``trace_id`` field is always encoded (as ``""`` when unstamped) so frame
sizes — and therefore size-dependent network latency — are identical
with tracing on or off. A seeded run with a tracer installed must
dispatch the exact same event stream as the same run without one. The
CI determinism job runs this guard.
"""

from repro.bftsmart import CounterService, GroupConfig, build_group, build_proxy
from repro.crypto import KeyStore
from repro.net import LanLatency, Network
from repro.obs.trace import install_tracer
from repro.sim import Simulator
from repro.wire import decode, encode

CLIENTS = 2
REQUESTS_EACH = 25


def run_seeded(traced: bool, seed: int = 7):
    sim = Simulator(seed=seed)
    tracer = install_tracer(sim) if traced else None
    # LanLatency is size-dependent: if tracing changed a single frame's
    # length, delivery times — and the whole schedule — would diverge.
    net = Network(sim, latency=LanLatency(rng=sim.rng.stream("net")))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, batch_max=8, batch_wait=0.0005)
    replicas = build_group(sim, net, config, CounterService, keystore)
    events = []

    def sender(proxy):
        for _ in range(REQUESTS_EACH):
            events.append(proxy.invoke_ordered(encode(("add", 1))))
            yield sim.timeout(0.002)

    for i in range(CLIENTS):
        proxy = build_proxy(
            sim, net, f"client-{i}", config, keystore, invoke_timeout=30.0
        )
        sim.process(sender(proxy))
    sim.run(until=sim.now + 10)
    assert all(event.ok for event in events)
    return sim, tracer, replicas


def decided_stream(replica):
    stream = []
    for _cid, value, _timestamp in replica.decision_log:
        if value == b"":
            continue
        for request in decode(value).requests:
            stream.append((request.client_id, request.sequence))
    return stream


def test_tracing_on_and_off_dispatch_identical_schedules():
    sim_off, _none, replicas_off = run_seeded(traced=False)
    sim_on, tracer, replicas_on = run_seeded(traced=True)

    # Same executed request stream on every replica, across both runs.
    streams_off = [decided_stream(r) for r in replicas_off]
    streams_on = [decided_stream(r) for r in replicas_on]
    assert all(s == streams_off[0] for s in streams_off)
    assert streams_on == streams_off
    assert len(streams_off[0]) == CLIENTS * REQUESTS_EACH

    # Same schedule, event for event, ending at the same instant.
    assert sim_on.dispatched == sim_off.dispatched
    assert sim_on.now == sim_off.now
    assert [r.service.value for r in replicas_on] == [
        r.service.value for r in replicas_off
    ]

    # And the traced run actually observed the workload.
    assert tracer is not None
    assert len(tracer.spans) > 0
    assert any(s.name == "consensus" for s in tracer.spans)


def test_disabled_tracer_is_inert():
    sim, tracer, _replicas = run_seeded(traced=True, seed=9)
    before = len(tracer.spans)
    tracer.enabled = False
    span = None
    if sim.tracer is not None and sim.tracer.enabled:  # the hook guard
        span = sim.tracer.begin("x", "t")
    assert span is None
    assert len(tracer.spans) == before
