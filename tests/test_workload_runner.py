"""Smoke tests for the experiment runner (small, fast parameter points)."""

import pytest

from repro.workloads import (
    ExperimentResult,
    run_update_experiment,
    run_write_experiment,
)


def test_update_experiment_neoscada_matches_offered_load():
    result = run_update_experiment(
        "neoscada", rate=200.0, duration=1.0, warmup=0.3, item_count=5
    )
    assert result.system == "neoscada"
    assert result.workload == "update"
    assert result.throughput == pytest.approx(200.0, rel=0.05)
    assert result.details["event_rate"] == 0.0


def test_update_experiment_alarm_ratio_controls_event_rate():
    result = run_update_experiment(
        "neoscada",
        rate=200.0,
        alarm_ratio=0.5,
        duration=1.0,
        warmup=0.3,
        item_count=5,
    )
    assert result.details["event_rate"] == pytest.approx(100.0, rel=0.1)


def test_update_experiment_smartscada_small_load():
    result = run_update_experiment(
        "smartscada", rate=100.0, duration=1.0, warmup=0.3, item_count=5
    )
    # Far below capacity: everything gets through.
    assert result.throughput == pytest.approx(100.0, rel=0.08)


def test_write_experiment_reports_latency_summary():
    result = run_write_experiment("neoscada", duration=0.5, warmup=0.2)
    assert result.workload == "write"
    assert result.throughput > 100
    assert result.latency["count"] > 0
    assert 0 < result.latency["p50"] <= result.latency["p99"]
    assert result.details["failed"] == 0


def test_overhead_vs_baseline():
    baseline = ExperimentResult("a", "w", 100.0, throughput=1000.0)
    slower = ExperimentResult("b", "w", 100.0, throughput=900.0)
    assert slower.overhead_vs(baseline) == pytest.approx(0.1)
    zero = ExperimentResult("c", "w", None, throughput=0.0)
    assert slower.overhead_vs(zero) == 0.0


def test_unknown_system_rejected():
    with pytest.raises(ValueError):
        run_update_experiment("mystery-scada", rate=10, duration=0.1, warmup=0.0)


def test_results_are_reproducible_per_seed():
    a = run_update_experiment("neoscada", rate=100, duration=0.5, warmup=0.2, seed=3)
    b = run_update_experiment("neoscada", rate=100, duration=0.5, warmup=0.2, seed=3)
    assert a.throughput == b.throughput
    assert a.details == b.details
