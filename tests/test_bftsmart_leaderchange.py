"""Focused tests for the synchronization phase (leader change)."""

import pytest

from repro.bftsmart import (
    CounterService,
    GroupConfig,
    Stop,
    build_group,
    build_proxy,
)
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Drop, Network
from repro.sim import Simulator
from repro.wire import decode, encode


def make_world(seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.0003))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, request_timeout=0.4, sync_timeout=0.8)
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    return sim, net, replicas, proxy


def run_adds(sim, proxy, count):
    def client():
        result = None
        for _ in range(count):
            raw = yield proxy.invoke_ordered(encode(("add", 1)))
            result = decode(raw)
        return result

    return sim.run_process(client(), until=sim.now + 120)


def test_no_spurious_leader_change_when_healthy():
    sim, _net, replicas, proxy = make_world()
    run_adds(sim, proxy, 20)
    sim.run(until=sim.now + 5)
    assert all(r.synchronizer.regency == 0 for r in replicas)
    assert all(r.synchronizer.changes_completed == 0 for r in replicas)


def test_leader_change_rotates_to_next_replica():
    sim, net, replicas, proxy = make_world()
    net.crash("replica-0")
    run_adds(sim, proxy, 3)
    live = replicas[1:]
    assert all(r.synchronizer.regency == 1 for r in live)
    assert all(r.leader == "replica-1" for r in live)
    assert all(r.synchronizer.changes_completed >= 1 for r in live)


def test_single_stop_does_not_change_leader():
    """One (possibly Byzantine) replica demanding a new regency is ignored
    until f+1 votes exist."""
    sim, _net, replicas, _proxy = make_world()
    byzantine = replicas[3]
    stop = Stop(sender=byzantine.address, regency=1)
    byzantine.channel.broadcast(byzantine.other_replicas(), stop)
    sim.run(until=sim.now + 3)
    assert all(r.synchronizer.regency == 0 for r in replicas[:3])


def test_stop_from_non_member_ignored():
    sim, net, replicas, _proxy = make_world()
    keystore = KeyStore()
    from repro.bftsmart.channel import SecureChannel

    outsider_endpoint = net.endpoint("outsider")
    outsider = SecureChannel(outsider_endpoint, keystore)
    for _ in range(5):
        outsider.broadcast(
            [r.address for r in replicas], Stop(sender="outsider", regency=1)
        )
    sim.run(until=sim.now + 2)
    assert all(r.synchronizer.regency == 0 for r in replicas)


def test_in_flight_value_recovered_across_leader_change():
    """A proposal that reached the WRITE phase before the leader died is
    re-proposed by the new leader — no decided operation is ever lost."""
    sim, net, replicas, proxy = make_world()

    # Let the leader propose, then cut it off right after the proposal
    # fan-out by dropping its ACCEPT traffic and then crashing it.
    run_adds(sim, proxy, 2)  # warm-up: everything healthy
    # Drop the leader's outgoing accepts so cid 2 stalls mid-protocol.
    net.faults.add(Drop(src="replica-0", kind="AcceptMsg"))
    event = proxy.invoke_ordered(encode(("add", 10)))
    sim.run(until=sim.now + 0.05)  # propose + writes circulate
    net.crash("replica-0")
    sim.run(until=sim.now + 30, stop_on=event)
    assert event.ok
    assert decode(event.value) == 12
    live = replicas[1:]
    sim.run(until=sim.now + 1)
    assert all(r.service.value == 12 for r in live)


def test_two_crashes_halt_but_do_not_corrupt():
    """f=1 with two crashed replicas: no regency can install (the STOP
    quorum needs 2f+1 = 3 voters), so the group safely halts; recovery
    of one replica restores liveness through a real leader change."""
    sim, net, replicas, proxy = make_world()
    net.crash("replica-0")
    net.crash("replica-1")
    event = proxy.invoke_ordered(encode(("add", 1)))
    event.defused = True
    sim.run(until=sim.now + 3)
    # Halted, and *correctly* so: no regency installed without a quorum.
    assert not event.triggered
    assert all(r.synchronizer.regency == 0 for r in replicas[2:])
    net.recover("replica-1")
    sim.run(until=sim.now + 30, stop_on=event)
    assert event.ok
    live = [r for r in replicas if r.address != "replica-0"]
    sim.run(until=sim.now + 1)
    assert all(r.synchronizer.regency >= 1 for r in live)
    assert run_adds(sim, proxy, 2) == 3


def make_pipelined_world(seed=1):
    """A slow-network world where the leader's window genuinely fills.

    ``batch_wait=0`` proposes each arriving request immediately, and the
    10 ms hop latency keeps instances undecided long enough to observe
    (and crash into) a multi-slot pipeline.
    """
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.01))
    keystore = KeyStore()
    config = GroupConfig(
        n=4, f=1, request_timeout=0.4, sync_timeout=0.8, batch_wait=0.0
    )
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    return sim, net, replicas, proxy


def test_pipelined_leader_crash_reproposes_every_inflight_cid():
    """Crashing the leader with several undecided cids in flight loses
    nothing: the sync phase collects the whole window from the STOP-DATA
    tuples and the new leader re-proposes every slot."""
    sim, net, replicas, proxy = make_pipelined_world()
    assert replicas[0].config.pipeline_depth >= 4

    events = [proxy.invoke_ordered(encode(("add", 1))) for _ in range(8)]
    # Requests land at 10 ms, the window's PROPOSEs at 20 ms, WRITEs at
    # 30 ms — crash the leader before any ACCEPT quorum (40 ms) forms.
    sim.run(until=sim.now + 0.025)
    live = replicas[1:]
    open_cids = {cid for r in live for cid in r.instances}
    assert len(open_cids) >= 2  # the pipeline really was multi-slot
    assert all(r.last_decided == -1 for r in live)
    net.crash("replica-0")

    sim.run(until=sim.now + 30, stop_on=sim.all_of(events))
    assert all(event.ok for event in events)
    sim.run(until=sim.now + 1)
    assert all(r.synchronizer.regency >= 1 for r in live)
    assert all(r.leader != "replica-0" for r in live)
    assert all(r.service.value == 8 for r in live)
    # Ordered-prefix invariant: every live replica executed the same
    # decisions in the same cid order.
    logs = [list(r.decision_log) for r in live]
    shortest = min(len(log) for log in logs)
    assert shortest > 0
    assert logs[0][:shortest] == logs[1][:shortest] == logs[2][:shortest]


def test_pipelined_leader_crash_preserves_client_order():
    """Re-proposed window slots keep per-client sequence order intact."""
    sim, net, replicas, proxy = make_pipelined_world(seed=3)
    events = [proxy.invoke_ordered(encode(("add", 1))) for _ in range(8)]
    sim.run(until=sim.now + 0.025)
    net.crash("replica-0")
    sim.run(until=sim.now + 30, stop_on=sim.all_of(events))
    assert all(event.ok for event in events)
    sim.run(until=sim.now + 1)
    live = replicas[1:]
    # Decode every decided batch in execution order and flatten to the
    # per-client sequence stream: it must be strictly increasing, with
    # every request executed exactly once.
    for replica in live:
        sequences = []
        for _cid, value, _timestamp in replica.decision_log:
            if value == b"":
                continue
            for request in decode(value).requests:
                if request.client_id == proxy.client_id:
                    sequences.append(request.sequence)
        assert sequences == sorted(sequences)
        assert len(sequences) == len(set(sequences)) == 8


def test_progress_suppresses_suspicion_under_load():
    """A busy but healthy group must not churn regencies just because
    individual requests wait behind others."""
    sim, _net, replicas, proxy = make_world()

    def burst():
        events = [proxy.invoke_ordered(encode(("add", 1))) for _ in range(300)]
        yield sim.all_of(events)
        return True

    sim.run_process(burst(), until=sim.now + 60)
    assert all(r.synchronizer.regency == 0 for r in replicas)
    assert all(r.service.value == 300 for r in replicas)
