"""Focused tests for the synchronization phase (leader change)."""

import pytest

from repro.bftsmart import (
    CounterService,
    GroupConfig,
    Stop,
    build_group,
    build_proxy,
)
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Drop, Network
from repro.sim import Simulator
from repro.wire import decode, encode


def make_world(seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.0003))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, request_timeout=0.4, sync_timeout=0.8)
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    return sim, net, replicas, proxy


def run_adds(sim, proxy, count):
    def client():
        result = None
        for _ in range(count):
            raw = yield proxy.invoke_ordered(encode(("add", 1)))
            result = decode(raw)
        return result

    return sim.run_process(client(), until=sim.now + 120)


def test_no_spurious_leader_change_when_healthy():
    sim, _net, replicas, proxy = make_world()
    run_adds(sim, proxy, 20)
    sim.run(until=sim.now + 5)
    assert all(r.synchronizer.regency == 0 for r in replicas)
    assert all(r.synchronizer.changes_completed == 0 for r in replicas)


def test_leader_change_rotates_to_next_replica():
    sim, net, replicas, proxy = make_world()
    net.crash("replica-0")
    run_adds(sim, proxy, 3)
    live = replicas[1:]
    assert all(r.synchronizer.regency == 1 for r in live)
    assert all(r.leader == "replica-1" for r in live)
    assert all(r.synchronizer.changes_completed >= 1 for r in live)


def test_single_stop_does_not_change_leader():
    """One (possibly Byzantine) replica demanding a new regency is ignored
    until f+1 votes exist."""
    sim, _net, replicas, _proxy = make_world()
    byzantine = replicas[3]
    stop = Stop(sender=byzantine.address, regency=1)
    byzantine.channel.broadcast(byzantine.other_replicas(), stop)
    sim.run(until=sim.now + 3)
    assert all(r.synchronizer.regency == 0 for r in replicas[:3])


def test_stop_from_non_member_ignored():
    sim, net, replicas, _proxy = make_world()
    keystore = KeyStore()
    from repro.bftsmart.channel import SecureChannel

    outsider_endpoint = net.endpoint("outsider")
    outsider = SecureChannel(outsider_endpoint, keystore)
    for _ in range(5):
        outsider.broadcast(
            [r.address for r in replicas], Stop(sender="outsider", regency=1)
        )
    sim.run(until=sim.now + 2)
    assert all(r.synchronizer.regency == 0 for r in replicas)


def test_in_flight_value_recovered_across_leader_change():
    """A proposal that reached the WRITE phase before the leader died is
    re-proposed by the new leader — no decided operation is ever lost."""
    sim, net, replicas, proxy = make_world()

    # Let the leader propose, then cut it off right after the proposal
    # fan-out by dropping its ACCEPT traffic and then crashing it.
    run_adds(sim, proxy, 2)  # warm-up: everything healthy
    # Drop the leader's outgoing accepts so cid 2 stalls mid-protocol.
    net.faults.add(Drop(src="replica-0", kind="AcceptMsg"))
    event = proxy.invoke_ordered(encode(("add", 10)))
    sim.run(until=sim.now + 0.05)  # propose + writes circulate
    net.crash("replica-0")
    sim.run(until=sim.now + 30, stop_on=event)
    assert event.ok
    assert decode(event.value) == 12
    live = replicas[1:]
    sim.run(until=sim.now + 1)
    assert all(r.service.value == 12 for r in live)


def test_two_crashes_halt_but_do_not_corrupt():
    """f=1 with two crashed replicas: no regency can install (the STOP
    quorum needs 2f+1 = 3 voters), so the group safely halts; recovery
    of one replica restores liveness through a real leader change."""
    sim, net, replicas, proxy = make_world()
    net.crash("replica-0")
    net.crash("replica-1")
    event = proxy.invoke_ordered(encode(("add", 1)))
    event.defused = True
    sim.run(until=sim.now + 3)
    # Halted, and *correctly* so: no regency installed without a quorum.
    assert not event.triggered
    assert all(r.synchronizer.regency == 0 for r in replicas[2:])
    net.recover("replica-1")
    sim.run(until=sim.now + 30, stop_on=event)
    assert event.ok
    live = [r for r in replicas if r.address != "replica-0"]
    sim.run(until=sim.now + 1)
    assert all(r.synchronizer.regency >= 1 for r in live)
    assert run_adds(sim, proxy, 2) == 3


def test_progress_suppresses_suspicion_under_load():
    """A busy but healthy group must not churn regencies just because
    individual requests wait behind others."""
    sim, _net, replicas, proxy = make_world()

    def burst():
        events = [proxy.invoke_ordered(encode(("add", 1))) for _ in range(300)]
        yield sim.all_of(events)
        return True

    sim.run_process(burst(), until=sim.now + 60)
    assert all(r.synchronizer.regency == 0 for r in replicas)
    assert all(r.service.value == 300 for r in replicas)
