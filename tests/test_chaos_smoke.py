"""Fast chaos smoke campaign (tier-1).

A trimmed-down drill on every commit: one cheap scenario over 3 seeds,
plus the bit-determinism contract — same seed + schedule produce the
identical event trace and invariant verdicts, with the hot-path PERF
switches on and off.
"""

from repro.chaos import get_scenario, run_campaign
from repro.chaos.campaign import CampaignConfig
from repro.perf import hot_path_optimizations

SMOKE_SCENARIO = "drop-write-value"


def test_smoke_campaign_three_seeds():
    scenario = get_scenario(SMOKE_SCENARIO)
    for seed in range(3):
        report = run_campaign(scenario.schedule(), scenario.config(seed=seed))
        assert report.ok, (
            f"seed {seed} violated: "
            f"{[(v.invariant, v.detail) for v in report.violations]}"
        )
        # The drop attack was live: some writes must have failed through
        # the deterministic logical-timeout path, none hung.
        assert report.writes_total > 0
        assert report.writes_failed_cleanly > 0
        assert (
            report.writes_succeeded + report.writes_failed_cleanly
            == report.writes_total
        )


def test_campaign_is_bit_deterministic():
    scenario = get_scenario(SMOKE_SCENARIO)
    config = scenario.config(CampaignConfig(seed=5, trace=True))

    first = run_campaign(scenario.schedule(), config)
    second = run_campaign(scenario.schedule(), config)
    assert first.fingerprint() == second.fingerprint()
    assert first.trace_digest == second.trace_digest

    # The PERF fast paths must be behaviour-invisible, hop for hop.
    with hot_path_optimizations(False):
        slow = run_campaign(scenario.schedule(), config)
    assert slow.fingerprint() == first.fingerprint()
    assert slow.trace_digest == first.trace_digest


def test_different_seeds_diverge():
    scenario = get_scenario(SMOKE_SCENARIO)
    a = run_campaign(scenario.schedule(), scenario.config(seed=1, trace=True))
    b = run_campaign(scenario.schedule(), scenario.config(seed=2, trace=True))
    assert a.fingerprint() != b.fingerprint()
