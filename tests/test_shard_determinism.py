"""Cross-shard determinism: the global AE order is a pure function of
the workload.

The rule (sort by consensus-assigned logical timestamp, shard id, then
per-shard commit order — :mod:`repro.shard.merge`) must yield the
*identical* alarm sequence no matter how the namespace is partitioned
or which event kernel runs the simulation: across seeds, across heap vs
ring kernels, and across 1/2/4 shards. Event ids are per-group counters
and legitimately differ between partitionings, so the comparison is on
semantic tuples ``(item_id, event_type, value)``.
"""

import pytest

from repro.neoscada import HandlerChain, Monitor
from repro.shard import ShardedScadaConfig, build_sharded_scada, merge_event_streams
from repro.sim import Simulator

ITEMS = [f"plant.sensor-{i}" for i in range(10)]
#: Update spacing (s). Comfortably larger than consensus latency, so the
#: logical-timestamp order of alarms is workload order, not racing.
SPACING = 0.02
SHARD_COUNTS = (1, 2, 4)
KERNELS = ("heap", "ring")


def run_workload(seed: int, kernel: str, shards: int):
    """One fixed alarm-heavy workload; returns (system, semantic seq)."""
    sim = Simulator(seed=seed, kernel=kernel)
    system = build_sharded_scada(sim, config=ShardedScadaConfig(shards=shards))
    for item in ITEMS:
        system.frontend.add_item(item, initial=0)
        system.attach_handlers(item, lambda: HandlerChain([Monitor(high=80.0)]))
    system.start()

    def workload():
        for rnd in range(3):
            for i, item in enumerate(ITEMS):
                # Every third item alarms each round; which third rotates.
                value = 95 if (i + rnd) % 3 == 0 else 20
                system.frontend.inject_update(item, value)
                yield sim.timeout(SPACING)
        yield sim.timeout(0.5)
        return True

    sim.run_process(workload(), until=60)
    system.flush_events()
    sequence = [
        (e.item_id, e.event_type, e.value)
        for e in system.hmi.events
        if e.event_type == "alarm"
    ]
    return system, sequence


def test_global_alarm_sequence_is_identical_across_everything():
    """The headline guarantee: seeds x kernels x shard counts, one order."""
    sequences = {}
    for seed in (1, 7):
        for kernel in KERNELS:
            for shards in SHARD_COUNTS:
                _, seq = run_workload(seed, kernel, shards)
                sequences[(seed, kernel, shards)] = seq
    reference = sequences[(1, "heap", 1)]
    assert reference, "workload produced no alarms"
    divergent = {
        combo: seq for combo, seq in sequences.items() if seq != reference
    }
    assert not divergent, (
        f"global AE order diverged for {sorted(divergent)}; "
        f"reference={reference}"
    )


@pytest.mark.parametrize("shards", (2, 4))
def test_online_merger_matches_the_offline_merge(shards):
    """The live holdback merger must reproduce the ground-truth offline
    sort of the per-shard commit logs once the run quiesces."""
    system, _ = run_workload(seed=3, kernel="heap", shards=shards)
    merger = system.proxy_hmi.merger
    online = [
        (shard, event.item_id, event.event_type)
        for shard, event in merger.released_events()
    ]
    # Ground truth: each group's commit-ordered event log (identical on
    # every replica of the group — take replica 0), merged offline.
    streams = [
        system.group(shard)[0].master.storage.query("*", limit=None)
        for shard in range(shards)
    ]
    offline = [
        (shard, event.item_id, event.event_type)
        for shard, event in merge_event_streams(streams)
    ]
    assert online == offline
    assert merger.stats["released"] == merger.stats["offered"]


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_reruns_are_bit_identical(shards):
    """Same seed, same kernel, same shard count: byte-for-byte the same
    event stream, ids included (the §III-B determinism bar)."""
    _, first = run_workload(seed=5, kernel="heap", shards=shards)
    system_a, _ = run_workload(seed=5, kernel="heap", shards=shards)
    system_b, _ = run_workload(seed=5, kernel="heap", shards=shards)
    full_a = [(e.event_id, e.item_id, e.timestamp) for e in system_a.hmi.events]
    full_b = [(e.event_id, e.item_id, e.timestamp) for e in system_b.hmi.events]
    assert full_a == full_b
