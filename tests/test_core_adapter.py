"""Focused tests for the Adapter (ScadaService): the heart of SMaRt-SCADA."""

import pytest

from repro.bftsmart.service import MessageContext
from repro.core.adapter import SCADA_STREAM, ScadaService
from repro.core.context import ContextInfo
from repro.neoscada import DataValue, HandlerChain, Monitor, ScadaMaster
from repro.neoscada.messages import BrowseReply, ItemUpdate, Subscribe, WriteValue
from repro.net import ConstantLatency, Network
from repro.sim import Simulator
from repro.wire import decode, encode


class FakeReplica:
    """Stands in for the ServiceReplica: records pushes."""

    def __init__(self):
        self.pushes = []

        class _View:
            addresses = ("replica-0", "replica-1", "replica-2", "replica-3")

        self.view = _View()

    def push(self, client_id, stream, order, payload):
        self.pushes.append((client_id, stream, order, payload))


def make_service(seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.0001))
    master = ScadaMaster(sim, net, "scada-master", frontends=[], workers=0, jitter=0.0)
    context = ContextInfo()
    master.clock = context.now
    master.event_id_source = context.next_event_id
    service = ScadaService(master, context)
    replica = FakeReplica()
    service._replica = replica
    return sim, master, service, replica


def ctx(cid=0, order=0, timestamp=1.0, client="proxy-frontend-0-bft"):
    return MessageContext(
        cid=cid,
        order=order,
        timestamp=timestamp,
        regency=0,
        client_id=client,
        sequence=cid,
        replica="replica-0",
    )


def test_update_operation_executes_and_pushes_to_subscriber():
    _sim, master, service, replica = make_service()
    service.execute(
        encode(Subscribe(subscriber="proxy-hmi-bft", item_id="*")),
        ctx(cid=0, client="proxy-hmi-bft"),
    )
    result = service.execute(
        encode(ItemUpdate("s", DataValue(5))), ctx(cid=1)
    )
    assert decode(result) == ("ok", "update")
    assert master.items.get("s").value.value == 5
    assert len(replica.pushes) == 1
    client_id, stream, order, payload = replica.pushes[0]
    assert client_id == "proxy-hmi-bft"
    assert stream == SCADA_STREAM
    assert order == (1, 0, 1)
    assert decode(payload) == ItemUpdate("s", DataValue(5))


def test_event_ids_and_timestamps_come_from_consensus():
    _sim, master, service, _replica = make_service()
    master.attach_handlers("s", HandlerChain([Monitor(high=1.0)]))
    service.execute(
        encode(ItemUpdate("s", DataValue(50))), ctx(cid=7, order=2, timestamp=33.25)
    )
    event = master.storage.latest(1)[0]
    assert event.event_id == "evt-7-2-1"
    assert event.timestamp == 33.25


def test_identical_operation_sequences_produce_identical_snapshots():
    operations = [
        (encode(Subscribe(subscriber="proxy-hmi-bft", item_id="*")), "proxy-hmi-bft"),
        (encode(BrowseReply(items=(("valve", True),))), "proxy-frontend-0-bft"),
        (encode(ItemUpdate("s", DataValue(5))), "proxy-frontend-0-bft"),
        (encode(WriteValue("valve", 1, "op1", "proxy-hmi-bft", "alice")), "proxy-hmi-bft"),
        (encode(ItemUpdate("s", DataValue(7))), "proxy-frontend-0-bft"),
    ]

    def run(seed):
        _sim, master, service, _replica = make_service(seed=seed)
        master.attach_handlers("s", HandlerChain([Monitor(high=6.0)]))
        for cid, (operation, client) in enumerate(operations):
            service.execute(operation, ctx(cid=cid, timestamp=cid * 0.5, client=client))
        return service.snapshot()

    assert run(1) == run(99)  # different simulator seeds, same state


def test_snapshot_roundtrip_restores_master_and_subscriptions():
    _sim, master, service, _replica = make_service()
    master.attach_handlers("s", HandlerChain([Monitor(high=1.0)]))
    service.execute(
        encode(Subscribe(subscriber="proxy-hmi-bft", item_id="*")),
        ctx(cid=0, client="proxy-hmi-bft"),
    )
    service.execute(encode(ItemUpdate("s", DataValue(50))), ctx(cid=1))
    snapshot = service.snapshot()

    _sim2, master2, service2, _replica2 = make_service(seed=2)
    master2.attach_handlers("s", HandlerChain([Monitor(high=1.0)]))
    service2.install_snapshot(snapshot)
    assert service2.snapshot() == snapshot
    assert master2.items.get("s").value.value == 50
    assert master2.da_server.subscriptions.is_subscribed("proxy-hmi-bft", "*")
    assert master2.chains["s"].handlers[0].in_alarm


def test_undecodable_operation_is_counted_not_fatal():
    _sim, _master, service, _replica = make_service()
    result = service.execute(b"\xff\xff garbage", ctx())
    assert decode(result)[0] == "error"
    assert service.stats["bad_operations"] == 1


def test_cost_of_distinguishes_kinds():
    _sim, master, service, _replica = make_service()
    update_cost = service.cost_of(encode(ItemUpdate("s", DataValue(1))))
    write_cost = service.cost_of(
        encode(WriteValue("s", 1, "op", "proxy-hmi-bft"))
    )
    control_cost = service.cost_of(
        encode(Subscribe(subscriber="x", item_id="*"))
    )
    assert update_cost == pytest.approx(master.cost_of("update", "s"))
    assert write_cost > update_cost
    assert control_cost == 0.0


def test_post_cost_reports_event_work_once():
    _sim, master, service, _replica = make_service()
    master.attach_handlers("s", HandlerChain([Monitor(high=1.0)]))
    service.execute(encode(ItemUpdate("s", DataValue(50))), ctx(cid=0))
    first = service.post_cost()
    assert first > 0
    assert service.post_cost() == 0.0  # consumed


def test_forged_timeout_vote_sender_is_rejected():
    from repro.bftsmart.messages import TimeoutVote
    from repro.core.timeout import LogicalTimeoutManager

    sim, master, service, replica = make_service()
    timeouts = LogicalTimeoutManager(
        sim, "replica-0", timeout=1.0, majority=3, send_vote=lambda v: None
    )
    service.timeouts = timeouts
    timeouts.arm("scada-master:w1", "valve")
    # replica-3 votes, but the operation arrives through replica-2's
    # adapter client: ballot stuffing, rejected.
    forged = TimeoutVote(replica="replica-3", operation_key=("scada-master:w1",))
    service.execute(
        encode(forged), ctx(client="replica-2-adapter")
    )
    assert timeouts._votes.get("scada-master:w1") is None
