"""Unit tests for ContextInfo and the logical-timeout manager."""

import pytest

from repro.bftsmart.messages import TimeoutVote
from repro.bftsmart.service import MessageContext
from repro.core.context import ContextInfo
from repro.core.timeout import LogicalTimeoutManager
from repro.sim import Simulator


def make_ctx(cid=3, order=1, timestamp=12.5):
    return MessageContext(
        cid=cid,
        order=order,
        timestamp=timestamp,
        regency=0,
        client_id="client",
        sequence=0,
        replica="replica-0",
    )


def test_context_serves_consensus_timestamp():
    info = ContextInfo()
    info.begin(make_ctx(timestamp=77.0))
    assert info.now() == 77.0


def test_context_event_ids_are_deterministic_and_unique():
    info = ContextInfo()
    info.begin(make_ctx(cid=5, order=2))
    assert info.next_event_id() == "evt-5-2-1"
    assert info.next_event_id() == "evt-5-2-2"
    info.begin(make_ctx(cid=6, order=0))
    assert info.next_event_id() == "evt-6-0-1"


def test_context_order_keys_increase_within_operation():
    info = ContextInfo()
    info.begin(make_ctx(cid=4, order=0))
    assert info.next_order_key() == (4, 0, 1)
    assert info.next_order_key() == (4, 0, 2)


def test_context_reads_outside_operation_rejected():
    info = ContextInfo()
    with pytest.raises(RuntimeError):
        info.now()
    info.begin(make_ctx())
    info.end()
    with pytest.raises(RuntimeError):
        info.next_event_id()


def test_two_replicas_derive_identical_context_outputs():
    a, b = ContextInfo(), ContextInfo()
    for info in (a, b):
        info.begin(make_ctx(cid=9, order=3, timestamp=1.5))
    assert a.now() == b.now()
    assert a.next_event_id() == b.next_event_id()
    assert a.next_order_key() == b.next_order_key()


# -- LogicalTimeoutManager ---------------------------------------------------


VOTERS = ("replica-0", "replica-1", "replica-2", "replica-3")


def make_manager(sim, sent, address="replica-0", timeout=1.0, majority=3):
    return LogicalTimeoutManager(
        sim=sim,
        replica_address=address,
        timeout=timeout,
        majority=majority,
        send_vote=sent.append,
    )


def test_timer_fires_vote_after_timeout():
    sim = Simulator()
    sent = []
    manager = make_manager(sim, sent)
    manager.arm("op-1", "item-1")
    sim.run(until=0.5)
    assert sent == []
    sim.run(until=1.5)
    assert len(sent) == 1
    assert sent[0].operation_key == ("op-1",)


def test_disarm_before_expiry_suppresses_vote():
    sim = Simulator()
    sent = []
    manager = make_manager(sim, sent)
    manager.arm("op-1", "item-1")
    sim.run(until=0.5)
    manager.disarm("op-1")
    sim.run(until=5.0)
    assert sent == []


def test_majority_of_votes_synthesizes_empty_write_result():
    sim = Simulator()
    manager = make_manager(sim, [])
    manager.arm("op-1", "item-1")
    results = [
        manager.on_ordered_vote(
            TimeoutVote(replica=f"replica-{i}", operation_key=("op-1",)), VOTERS
        )
        for i in range(3)
    ]
    assert results[0] is None and results[1] is None
    synthesized = results[2]
    assert synthesized is not None
    assert not synthesized.success
    assert synthesized.op_id == "op-1"
    assert synthesized.item_id == "item-1"
    assert "logical timeout" in synthesized.reason


def test_duplicate_votes_do_not_double_count():
    sim = Simulator()
    manager = make_manager(sim, [])
    manager.arm("op-1", "item-1")
    vote = TimeoutVote(replica="replica-1", operation_key=("op-1",))
    assert manager.on_ordered_vote(vote, VOTERS) is None
    assert manager.on_ordered_vote(vote, VOTERS) is None
    assert manager.on_ordered_vote(vote, VOTERS) is None


def test_votes_from_invalid_voters_ignored():
    sim = Simulator()
    manager = make_manager(sim, [])
    manager.arm("op-1", "item-1")
    for i in range(5):
        result = manager.on_ordered_vote(
            TimeoutVote(replica=f"evil-{i}", operation_key=("op-1",)), VOTERS
        )
        assert result is None


def test_votes_for_unknown_operation_ignored():
    sim = Simulator()
    manager = make_manager(sim, [])
    for i in range(4):
        assert (
            manager.on_ordered_vote(
                TimeoutVote(replica=f"replica-{i}", operation_key=("ghost",)), VOTERS
            )
            is None
        )


def test_synthesis_happens_once():
    sim = Simulator()
    manager = make_manager(sim, [])
    manager.arm("op-1", "item-1")
    outcomes = [
        manager.on_ordered_vote(
            TimeoutVote(replica=f"replica-{i}", operation_key=("op-1",)), VOTERS
        )
        for i in range(4)
    ]
    assert sum(1 for o in outcomes if o is not None) == 1
