"""Unit tests for the item->shard partition and router cache
(:mod:`repro.shard.map`) plus the sharded configuration's index and
address arithmetic (:mod:`repro.shard.config`)."""

import zlib

import pytest

from repro.bftsmart.config import GroupConfig
from repro.shard import (
    ShardMap,
    ShardRouter,
    ShardedScadaConfig,
    hash_shard,
    shard_replica_address,
)


# -- hash partition -------------------------------------------------------


def test_hash_shard_is_stable_and_in_range():
    for shards in (1, 2, 4, 7):
        for i in range(50):
            item = f"plant.sensor-{i}"
            shard = hash_shard(item, shards)
            assert 0 <= shard < shards
            # Same answer on every call: the partition is pure.
            assert hash_shard(item, shards) == shard


def test_hash_shard_is_crc32_not_process_randomized_hash():
    # Python's str hash is salted per process; the partition must be the
    # same on every replica and every rerun.
    assert hash_shard("plant.valve", 4) == zlib.crc32(b"plant.valve") % 4


def test_hash_partition_actually_spreads_items():
    shards_hit = {hash_shard(f"plant.sensor-{i}", 4) for i in range(100)}
    assert shards_hit == {0, 1, 2, 3}


# -- ShardMap -------------------------------------------------------------


def test_hash_map_matches_hash_shard():
    shard_map = ShardMap(shards=4)
    for i in range(20):
        item = f"item-{i}"
        assert shard_map.shard_of(item) == hash_shard(item, 4)


def test_range_map_longest_prefix_wins():
    shard_map = ShardMap(
        shards=3,
        kind="range",
        ranges=(("plant.", 0), ("plant.turbine.", 1)),
    )
    assert shard_map.shard_of("plant.turbine.rpm") == 1
    assert shard_map.shard_of("plant.feedwater.flow") == 0


def test_range_map_falls_back_to_hash_so_it_is_total():
    shard_map = ShardMap(shards=3, kind="range", ranges=(("plant.", 0),))
    orphan = "substation.breaker"
    assert shard_map.shard_of(orphan) == hash_shard(orphan, 3)


def test_pins_beat_ranges_and_hash():
    shard_map = ShardMap(shards=3, kind="range", ranges=(("plant.", 0),))
    shard_map.assign(["plant.turbine.rpm"], 2)
    assert shard_map.shard_of("plant.turbine.rpm") == 2
    # Everything else still follows the ranges.
    assert shard_map.shard_of("plant.feedwater.flow") == 0


def test_assign_bumps_the_epoch_once_per_call():
    shard_map = ShardMap(shards=2)
    assert shard_map.epoch == 0
    shard_map.assign(["a", "b", "c"], 1)
    assert shard_map.epoch == 1
    assert all(shard_map.shard_of(i) == 1 for i in ("a", "b", "c"))


def test_owned_by_partitions_an_item_set():
    shard_map = ShardMap(shards=2)
    items = [f"item-{i}" for i in range(20)]
    owned = [shard_map.owned_by(s, items) for s in range(2)]
    assert sorted(owned[0] + owned[1]) == sorted(items)
    assert not set(owned[0]) & set(owned[1])


def test_map_validation():
    with pytest.raises(ValueError):
        ShardMap(shards=0)
    with pytest.raises(ValueError):
        ShardMap(shards=2, kind="modulo")
    with pytest.raises(ValueError):
        ShardMap(shards=2, ranges=(("plant.", 0),))  # ranges need kind=range
    with pytest.raises(ValueError):
        ShardMap(shards=2, kind="range", ranges=(("plant.", 5),))
    shard_map = ShardMap(shards=2)
    with pytest.raises(ValueError):
        shard_map.assign(["x"], 2)


# -- ShardRouter (resolve-once cache) -------------------------------------


def test_router_caches_after_first_resolution():
    router = ShardRouter(ShardMap(shards=4))
    first = router.route("plant.valve")
    for _ in range(9):
        assert router.route("plant.valve") == first
    assert router.stats == {"hits": 9, "misses": 1, "invalidations": 0}


def test_epoch_bump_invalidates_the_whole_cache():
    shard_map = ShardMap(shards=2)
    router = ShardRouter(shard_map)
    item = "plant.valve"
    before = router.route(item)
    shard_map.assign([item], 1 - before)
    # The next lookup drops the cache and re-resolves to the new owner.
    assert router.route(item) == 1 - before
    assert router.stats["invalidations"] == 1
    assert router.stats["misses"] == 2


def test_independent_routers_share_the_map_epoch():
    shard_map = ShardMap(shards=2)
    routers = [ShardRouter(shard_map) for _ in range(3)]
    for r in routers:
        r.route("item-a")
    shard_map.assign(["item-a"], 0)
    for r in routers:
        r.route("item-a")
        assert r.stats["invalidations"] == 1


# -- sharded configuration arithmetic -------------------------------------


def test_global_index_round_trips():
    config = ShardedScadaConfig(shards=4)
    n = config.base.n
    for shard in range(4):
        for local in range(n):
            gi = config.global_index(shard, local)
            assert gi == shard * n + local
            assert config.shard_of_index(gi) == shard


def test_single_shard_addresses_match_the_classic_deployment():
    config = ShardedScadaConfig(shards=1)
    classic = GroupConfig(n=config.base.n, f=config.base.f)
    assert config.group_config(0).addresses == classic.addresses
    assert shard_replica_address(0, 2, shards=1) == "replica-2"


def test_multi_shard_addresses_are_namespaced_and_disjoint():
    config = ShardedScadaConfig(shards=2)
    groups = config.group_configs()
    assert groups[0].addresses[0] == "s0-replica-0"
    assert groups[1].addresses[0] == "s1-replica-0"
    assert not set(groups[0].addresses) & set(groups[1].addresses)
