"""Edge-case tests for the simulation kernel not covered elsewhere."""

import pytest

from repro.sim import AnyOf, Channel, Interrupted, Simulator


def test_any_of_propagates_first_failure():
    sim = Simulator()
    bad = sim.event()

    def failer():
        yield sim.timeout(1.0)
        bad.fail(RuntimeError("boom"))

    def racer():
        try:
            yield sim.any_of([bad, sim.timeout(10.0)])
        except RuntimeError as exc:
            return f"caught:{exc}"
        return "no-error"

    sim.process(failer())
    proc = sim.process(racer())
    sim.run(until=20.0)
    assert proc.value == "caught:boom"


def test_any_of_second_finisher_is_defused():
    sim = Simulator()

    def racer():
        result = yield sim.any_of([sim.timeout(1.0, "fast"), sim.timeout(2.0, "slow")])
        return result

    proc = sim.process(racer())
    sim.run()  # the losing timeout still fires; must not raise
    assert proc.value == (0, "fast")


def test_call_later_event_value_is_none_not_result():
    sim = Simulator()
    event = sim.call_later(1.0, lambda: "ignored")
    sim.run()
    assert event.ok
    assert event.value is None


def test_interrupt_before_first_step_fails_process():
    sim = Simulator()

    def never_runs():
        yield sim.timeout(1.0)
        return "ran"

    proc = sim.process(never_runs())
    proc.interrupt("too-early")
    caught = {}
    proc.add_callback(lambda ev: caught.setdefault("exc", ev.exception))
    sim.run()
    assert isinstance(caught["exc"], Interrupted)


def test_double_interrupt_is_safe():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(10.0)
        except Interrupted:
            return "interrupted-once"

    proc = sim.process(sleeper())
    sim.call_later(1.0, proc.interrupt)
    sim.call_later(1.0, proc.interrupt)
    sim.run(until=2.0)
    assert proc.value == "interrupted-once"


def test_process_waiting_on_failed_process_sees_exception():
    sim = Simulator()

    def child():
        yield sim.timeout(0.5)
        raise ValueError("child-broke")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            return f"caught:{exc}"

    proc = sim.process(parent())
    sim.run()
    assert proc.value == "caught:child-broke"


def test_channel_get_after_close_drains_then_fails():
    sim = Simulator()
    channel = Channel(sim)
    channel.put("last")
    channel.close()
    outcomes = []

    def consumer():
        item = yield channel.get()
        outcomes.append(item)
        try:
            yield channel.get()
        except Exception as exc:
            outcomes.append(type(exc).__name__)

    sim.process(consumer())
    sim.run()
    assert outcomes == ["last", "ChannelClosed"]


def test_rng_streams_are_independent_and_stable():
    sim_a = Simulator(seed=123)
    sim_b = Simulator(seed=123)
    a1 = [sim_a.rng.stream("x").random() for _ in range(5)]
    # Interleave another stream: must not perturb "x".
    sim_b.rng.stream("y").random()
    b1 = [sim_b.rng.stream("x").random() for _ in range(5)]
    assert a1 == b1


def test_rng_reset_restarts_streams():
    sim = Simulator(seed=5)
    first = sim.rng.stream("s").random()
    sim.rng.reset()
    assert sim.rng.stream("s").random() == first
    assert "s" in sim.rng


def test_peek_returns_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.call_later(3.5, lambda: None)
    assert sim.peek() == 3.5


def test_zero_delay_timeout_runs_in_order():
    sim = Simulator()
    order = []
    sim.call_soon(order.append, "first")
    sim.timeout(0.0).add_callback(lambda ev: order.append("second"))
    sim.run()
    assert order == ["first", "second"]
