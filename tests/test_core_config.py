"""Tests for deployment configuration and the network factory."""

import dataclasses

import pytest

from repro.core import (
    DEFAULT_HOP_LATENCY,
    SmartScadaConfig,
    make_network,
    neoscada_costs,
    smartscada_costs,
)
from repro.sim import Simulator


def test_default_deployment_matches_the_paper():
    config = SmartScadaConfig()
    assert config.n == 4 and config.f == 1  # six machines: 4 masters + 2
    group = config.group_config()
    assert group.n == 4
    assert group.addresses == ("replica-0", "replica-1", "replica-2", "replica-3")


def test_timeout_majority_is_strict_majority():
    assert SmartScadaConfig(n=4, f=1).timeout_majority == 3
    assert SmartScadaConfig(n=7, f=2).timeout_majority == 4


def test_cost_models_encode_the_papers_asymmetry():
    neo = neoscada_costs()
    smart = smartscada_costs()
    # The replicated Master pays the serialization/determinism tax...
    assert smart.serialization > 0 and neo.serialization == 0
    assert smart.write_processing > neo.write_processing
    # ...and its synchronous storage writer is slower than the
    # original's concurrent batched one.
    assert smart.storage_service_time > neo.storage_service_time
    # The raw handler/update processing itself is identical code.
    assert smart.update_processing == neo.update_processing


def test_group_config_propagates_tunables():
    config = SmartScadaConfig(batch_max=7, request_timeout=9.0)
    group = config.group_config()
    assert group.batch_max == 7
    assert group.request_timeout == 9.0


def test_costs_are_immutable_but_replaceable():
    costs = smartscada_costs()
    with pytest.raises(dataclasses.FrozenInstanceError):
        costs.serialization = 0.0
    adjusted = dataclasses.replace(costs, serialization=0.0)
    assert adjusted.serialization == 0.0


def test_make_network_uses_lan_model_and_optional_trace():
    sim = Simulator(seed=1)
    net = make_network(sim, trace=True)
    assert net.trace.enabled
    a = net.endpoint("a")
    net.endpoint("b").set_handler(lambda m, s: None)
    a.send("b", "x")
    sim.run(until=1.0)
    hop = net.trace.hops[0]
    # One hop costs about the configured base latency.
    latency = hop.delivered_at - hop.sent_at
    assert DEFAULT_HOP_LATENCY <= latency <= DEFAULT_HOP_LATENCY * 3

    quiet = make_network(Simulator(seed=2))
    assert not quiet.trace.enabled
