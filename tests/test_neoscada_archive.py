"""Tests for the historical-data (value archive) subsystem."""

import pytest

from repro.core import build_neoscada
from repro.neoscada import DataValue, Quality
from repro.neoscada.archive import TrendRecorder, ValueArchive
from repro.sim import Simulator


def sample(value, t):
    return DataValue(value, Quality.GOOD, t)


def test_raw_series_records_in_order():
    archive = ValueArchive()
    for i in range(5):
        archive.record("a", sample(i * 10, float(i)))
    assert archive.raw("a") == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
    assert archive.raw("a", start=1.5, end=3.0) == [(2.0, 20.0), (3.0, 30.0)]
    assert archive.items() == ["a"]
    assert archive.samples_recorded == 5


def test_raw_capacity_is_bounded():
    archive = ValueArchive(raw_capacity=3)
    for i in range(10):
        archive.record("a", sample(i, float(i)))
    assert [v for _t, v in archive.raw("a")] == [7.0, 8.0, 9.0]


def test_non_numeric_and_bad_quality_skipped():
    archive = ValueArchive()
    archive.record("a", sample("text", 0.0))
    archive.record("a", sample(True, 1.0))
    archive.record("a", DataValue(5, Quality.BAD, 2.0))
    archive.record("a", sample(None, 3.0))
    assert archive.raw("a") == []
    assert archive.samples_recorded == 0


def test_trend_buckets_aggregate():
    archive = ValueArchive(resolutions=(1.0, 10.0))
    for tenth in range(25):  # t = 0.0 .. 2.4s
        archive.record("a", sample(tenth, tenth / 10))
    one_second = archive.trend("a", 1.0)
    assert [b.start for b in one_second] == [0.0, 1.0, 2.0]
    first = one_second[0]
    assert first.count == 10
    assert first.minimum == 0 and first.maximum == 9
    assert first.mean == pytest.approx(4.5)
    assert first.last == 9
    ten_second = archive.trend("a", 10.0)
    assert len(ten_second) == 1
    assert ten_second[0].count == 25


def test_trend_unknown_level_rejected():
    archive = ValueArchive(resolutions=(1.0,))
    archive.record("a", sample(1, 0.0))
    with pytest.raises(KeyError):
        archive.trend("a", 42.0)
    assert archive.trend("ghost", 1.0) == []


def test_trend_window_query():
    archive = ValueArchive(resolutions=(1.0,))
    for i in range(10):
        archive.record("a", sample(i, float(i)))
    window = archive.trend("a", 1.0, start=3.0, end=5.0)
    assert [b.start for b in window] == [3.0, 4.0, 5.0]


def test_out_of_order_straggler_dropped():
    archive = ValueArchive(resolutions=(1.0,))
    archive.record("a", sample(1, 5.0))
    archive.record("a", sample(2, 1.0))  # older bucket: dropped from trend
    assert [b.start for b in archive.trend("a", 1.0)] == [5.0]


def test_statistics():
    archive = ValueArchive()
    for value in (5, 1, 9, 3):
        archive.record("a", sample(value, float(value)))
    stats = archive.statistics("a")
    assert stats == {"count": 4, "min": 1.0, "max": 9.0, "mean": 4.5, "last": 3.0}
    assert archive.statistics("ghost") == {"count": 0}


def test_archive_validation():
    with pytest.raises(ValueError):
        ValueArchive(resolutions=())
    with pytest.raises(ValueError):
        ValueArchive(resolutions=(10.0, 1.0))
    with pytest.raises(ValueError):
        ValueArchive(resolutions=(0.0,))


def test_trend_recorder_captures_hmi_stream():
    sim = Simulator(seed=1)
    system = build_neoscada(sim)
    system.frontend.add_item("sensor", initial=0)
    system.start()
    seen = []
    system.hmi.on_value_change = lambda item, value: seen.append(item)
    recorder = TrendRecorder(system.hmi)
    for i in range(5):
        system.frontend.inject_update("sensor", i + 1)
        sim.run(until=sim.now + 0.1)
    stats = recorder.archive.statistics("sensor")
    assert stats["count"] == 5
    assert stats["last"] == 5.0
    # The pre-existing observer still fires (chained, not replaced).
    assert len(seen) == 5
    recorder.detach()
    system.frontend.inject_update("sensor", 99)
    sim.run(until=sim.now + 0.2)
    assert recorder.archive.statistics("sensor")["count"] == 5
    assert len(seen) == 6
