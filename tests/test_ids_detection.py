"""End-to-end intrusion detection plus the scoring machinery.

One test per planted behaviour: run a real campaign with the compromise
in the schedule and check the detector names the right replica with the
right label inside the ground-truth window. The scorer itself is
exercised separately on hand-built detection/episode sets, where
precision, recall, attribution, and false-positive classification can
be asserted exactly.
"""

from dataclasses import replace as dc_replace

import pytest

from repro.chaos import (
    InjectWrites,
    Schedule,
    SpoofFrontend,
    SwapByzantine,
    run_campaign,
)
from repro.chaos.campaign import CampaignConfig
from repro.ids import (
    Detection,
    GroundTruthEpisode,
    IdsConfig,
    score_detections,
)

BEHAVIOURS = ("silent", "lying", "falsifying", "equivocating", "stuttering")


def run_swap(behaviour: str, seed: int = 3, **config_overrides):
    # The equivocation drill must compromise the replica that is
    # actually leading; the others work on any backup.
    index = 0 if behaviour == "equivocating" else 2
    schedule = Schedule([
        SwapByzantine(at=1.5, index=index, behaviour=behaviour, duration=3.0),
    ])
    config = dc_replace(CampaignConfig(ids=True), seed=seed,
                        **config_overrides)
    return run_campaign(schedule, config), f"replica-{index}"


@pytest.mark.parametrize("behaviour", BEHAVIOURS)
def test_byzantine_behaviour_detected_and_attributed(behaviour):
    report, victim = run_swap(behaviour)
    entry = report.ids_score["behaviours"][behaviour]
    assert entry["recall"] == 1.0
    assert entry["precision"] == 1.0
    assert entry["f1"] == 1.0
    assert report.ids_score["false_positive_count"] == 0
    assert any(
        d.kind == f"byzantine-{behaviour}" and d.entity == victim
        for d in report.detections
    )


@pytest.mark.parametrize("behaviour", ("silent", "lying", "falsifying"))
def test_detection_latency_bounded(behaviour):
    report, _victim = run_swap(behaviour)
    entry = report.ids_score["behaviours"][behaviour]
    # Silence takes a full quiet window to assert; divergence is caught
    # on the first mismatching reply.
    bound = 2.0 if behaviour == "silent" else 0.5
    assert entry["mean_latency"] is not None
    assert entry["mean_latency"] <= bound


def test_write_burst_detected():
    schedule = Schedule([InjectWrites(at=2.0, count=24, interval=0.03)])
    report = run_campaign(schedule, CampaignConfig(seed=3, ids=True))
    entry = report.ids_score["behaviours"]["write-burst"]
    assert entry["f1"] == 1.0
    assert report.ids_score["false_positive_count"] == 0
    assert any(d.kind == "write-burst" for d in report.detections)


def test_spoofed_frontend_detected():
    schedule = Schedule([SpoofFrontend(at=2.0, count=30, interval=0.03)])
    report = run_campaign(schedule, CampaignConfig(seed=3, ids=True))
    entry = report.ids_score["behaviours"]["spoof"]
    assert entry["f1"] == 1.0
    assert any(d.kind == "spoofed-frontend" for d in report.detections)


def test_alert_threshold_is_respected():
    """An absurdly high alert threshold silences the detector without
    otherwise changing the run (same fingerprint)."""
    deaf = IdsConfig(alert_threshold=1e9)
    report, _ = run_swap("lying", ids_config=deaf)
    baseline, _ = run_swap("lying")
    assert not report.detections
    assert report.fingerprint() == baseline.fingerprint()


def test_detections_do_not_perturb_fingerprint():
    report, _ = run_swap("falsifying")
    plain = run_campaign(
        Schedule([SwapByzantine(at=1.5, index=2, behaviour="falsifying",
                                duration=3.0)]),
        CampaignConfig(seed=3),
    )
    assert report.fingerprint() == plain.fingerprint()


# -- scoring unit tests -----------------------------------------------------


def episode(**kw):
    defaults = dict(kind="byzantine", entity="replica-2", start=1.0, end=4.0,
                    behaviour="lying")
    defaults.update(kw)
    return GroundTruthEpisode(**defaults)


def detection(**kw):
    defaults = dict(time=1.5, kind="byzantine-lying", entity="replica-2",
                    score=2.0, detector="reply-divergence")
    defaults.update(kw)
    return Detection(**defaults)


def test_exact_match_scores_perfectly():
    score = score_detections([detection()], [episode()])
    entry = score["behaviours"]["lying"]
    assert entry["recall"] == entry["precision"] == entry["f1"] == 1.0
    assert entry["mean_latency"] == pytest.approx(0.5)
    assert score["false_positive_count"] == 0


def test_unrelated_detection_is_a_false_positive():
    score = score_detections(
        [detection(entity="replica-0", time=0.5)], [episode()]
    )
    assert score["false_positive_count"] == 1
    assert score["behaviours"]["lying"]["detected"] == 0


def test_mislabel_inside_episode_is_attributed_not_false():
    """Flagging the right compromised replica with the wrong behaviour
    label costs recall, not precision — the operator still isolated the
    right node."""
    score = score_detections(
        [detection(kind="byzantine-stuttering")], [episode()]
    )
    entry = score["behaviours"]["lying"]
    assert entry["detected"] == 0  # exact-kind recall missed ...
    assert score["false_positive_count"] == 0  # ... but no false alarm
    assert score["misattributed"] == 1


def test_grace_window_bounds_late_detections():
    late_ok = detection(time=4.9)
    too_late = detection(time=5.1)
    assert score_detections([late_ok], [episode()],
                            grace=1.0)["false_positive_count"] == 0
    assert score_detections([too_late], [episode()],
                            grace=1.0)["false_positive_count"] == 1


def test_wildcard_entity_admits_any_target():
    spoof = episode(kind="spoof", entity="*", behaviour="")
    score = score_detections(
        [detection(kind="spoofed-frontend", entity="ingress", time=1.2)],
        [spoof],
    )
    assert score["behaviours"]["spoof"]["recall"] == 1.0


def test_vacuous_scoring_is_perfect():
    score = score_detections([], [])
    assert score["false_positive_count"] == 0
    assert score["episodes"] == 0
    assert score["detections"] == 0
