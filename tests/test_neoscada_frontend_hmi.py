"""Focused tests for the Frontend (polling, writes, browse) and the HMI."""

import pytest

from repro.neoscada import RTU, Frontend, HMI
from repro.neoscada.messages import (
    BrowseReply,
    BrowseRequest,
    ItemUpdate,
    Subscribe,
    WriteResult,
    WriteValue,
)
from repro.net import ConstantLatency, Drop, Network
from repro.sim import Simulator


def make_world(seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.0002))
    return sim, net


class Collector:
    """A minimal subscriber endpoint collecting messages."""

    def __init__(self, net, address):
        self.received = []
        self.endpoint = net.endpoint(address)
        self.endpoint.set_handler(lambda m, src: self.received.append(m))

    def of_kind(self, cls):
        return [m for m in self.received if isinstance(m, cls)]


def test_frontend_publishes_only_changed_registers():
    sim, net = make_world()
    rtu = RTU(sim, net, "rtu-1")
    rtu.set_register(0, 10)
    frontend = Frontend(sim, net, "fe", poll_interval=0.1)
    frontend.add_item("sensor", rtu="rtu-1", register=0)
    subscriber = Collector(net, "sub")
    frontend.start()
    frontend.da_server.dispatch(Subscribe(subscriber="sub", item_id="*"), "sub")
    sim.run(until=1.0)
    first = len(subscriber.of_kind(ItemUpdate))
    assert first == 1  # initial change only; register is static
    rtu.set_register(0, 20)
    sim.run(until=2.0)
    assert len(subscriber.of_kind(ItemUpdate)) == first + 1


def test_frontend_polls_contiguous_runs_together():
    sim, net = make_world()
    frontend = Frontend(sim, net, "fe")
    for register in (0, 1, 2, 7, 9):
        frontend.add_item(f"i{register}", rtu="rtu-1", register=register)
    runs = frontend._register_runs()
    assert runs == {"rtu-1": [(0, 3), (7, 1), (9, 1)]}


def test_frontend_initial_sync_on_subscribe():
    sim, net = make_world()
    frontend = Frontend(sim, net, "fe")
    frontend.add_item("sensor", initial=5)
    subscriber = Collector(net, "sub")
    frontend.da_server.dispatch(Subscribe(subscriber="sub", item_id="*"), "sub")
    sim.run(until=0.5)
    updates = subscriber.of_kind(ItemUpdate)
    assert [u.value.value for u in updates] == [5]


def test_frontend_write_to_rtu_register():
    sim, net = make_world()
    rtu = RTU(sim, net, "rtu-1", writable_registers=(3,))
    rtu.set_register(3, 0)
    frontend = Frontend(sim, net, "fe")
    frontend.add_item("breaker", rtu="rtu-1", register=3, writable=True)
    requester = Collector(net, "req")
    net.endpoint("fe")._deliver(
        WriteValue(item_id="breaker", value=1, op_id="w1", reply_to="req"), "req"
    )
    sim.run(until=1.0)
    results = requester.of_kind(WriteResult)
    assert len(results) == 1 and results[0].success
    assert rtu.registers[3] == 1


def test_frontend_write_times_out_when_rtu_dead():
    sim, net = make_world()
    RTU(sim, net, "rtu-1", writable_registers=(0,)).set_register(0, 0)
    frontend = Frontend(sim, net, "fe", write_timeout=0.5)
    frontend.add_item("a", rtu="rtu-1", register=0, writable=True)
    net.crash("rtu-1")
    requester = Collector(net, "req")
    net.endpoint("fe")._deliver(
        WriteValue(item_id="a", value=1, op_id="w1", reply_to="req"), "req"
    )
    sim.run(until=2.0)
    results = requester.of_kind(WriteResult)
    assert len(results) == 1
    assert not results[0].success
    assert "did not answer" in results[0].reason


def test_frontend_write_rejects_bad_values_and_items():
    sim, net = make_world()
    frontend = Frontend(sim, net, "fe")
    frontend.add_item("ro", initial=0, writable=False)
    frontend.add_item("mapped", rtu="rtu-1", register=0, writable=True)
    net.endpoint("rtu-1")  # exists but is not a real RTU
    requester = Collector(net, "req")
    deliver = net.endpoint("fe")._deliver
    deliver(WriteValue("ghost", 1, "w1", "req"), "req")
    deliver(WriteValue("ro", 1, "w2", "req"), "req")
    deliver(WriteValue("mapped", -5, "w3", "req"), "req")
    sim.run(until=1.0)
    results = {r.op_id: r for r in requester.of_kind(WriteResult)}
    assert not results["w1"].success and "unknown" in results["w1"].reason
    assert not results["w2"].success and "not writable" in results["w2"].reason
    assert not results["w3"].success and "does not fit" in results["w3"].reason


def test_frontend_browse_lists_items():
    sim, net = make_world()
    frontend = Frontend(sim, net, "fe")
    frontend.add_item("a", initial=0)
    frontend.add_item("b", initial=0, writable=True)
    requester = Collector(net, "req")
    net.endpoint("fe")._deliver(BrowseRequest(reply_to="req"), "req")
    sim.run(until=0.5)
    reply = requester.of_kind(BrowseReply)[0]
    assert reply.items == (("a", False), ("b", True))


def test_frontend_duplicate_item_rejected():
    sim, net = make_world()
    frontend = Frontend(sim, net, "fe")
    frontend.add_item("a")
    with pytest.raises(ValueError):
        frontend.add_item("a")
    with pytest.raises(ValueError):
        frontend.add_item("b", rtu="rtu-1")  # register missing


def test_hmi_view_model_and_observers():
    from repro.core import build_neoscada
    from repro.neoscada import HandlerChain, Monitor

    sim2 = Simulator(seed=2)
    system = build_neoscada(sim2)
    system.frontend.add_item("s", initial=1)
    system.master.attach_handlers("s", HandlerChain([Monitor(high=10)]))
    system.start()
    changes = []
    alarms = []
    system.hmi.on_value_change = lambda item, value: changes.append((item, value.value))
    system.hmi.on_alarm = alarms.append
    system.frontend.inject_update("s", 50)
    sim2.run(until=sim2.now + 0.5)
    assert ("s", 50) in changes
    assert len(alarms) == 1
    assert system.hmi.value_of("s") == 50
    assert system.hmi.value_of("never-seen") is None


def test_hmi_event_log_is_bounded():
    sim, net = make_world()
    hmi = HMI(sim, net, "hmi", master_address="nowhere", event_log_size=10)
    from repro.neoscada import EventRecord, Severity

    for i in range(25):
        hmi._on_event(
            EventRecord(f"e{i}", "x", "alarm", Severity.ALARM, i, "", float(i)),
            "master",
        )
    assert len(hmi.events) == 10
    assert hmi.events[-1].event_id == "e24"
