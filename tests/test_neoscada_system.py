"""Integration tests for the unreplicated NeoSCADA deployment.

These exercise the paper's §II-B use cases end-to-end (Figures 3 and 4)
and demonstrate the nondeterminism that motivates §III-B.
"""

import pytest

from repro.core import build_neoscada, make_network
from repro.neoscada import (
    RTU,
    Block,
    HandlerChain,
    Monitor,
    Override,
    Scale,
)
from repro.neoscada.field import PowerFeeder
from repro.sim import Simulator


def build(seed=1, **kwargs):
    sim = Simulator(seed=seed)
    system = build_neoscada(sim, **kwargs)
    return sim, system


def test_item_update_flow_reaches_hmi():
    """Paper Figure 3: Frontend -> Master -> HMI."""
    sim, system = build()
    system.frontend.add_item("sensor", initial=0)
    system.start()
    system.frontend.inject_update("sensor", 42)
    sim.run(until=sim.now + 0.5)
    assert system.hmi.value_of("sensor") == 42
    assert system.master.stats["updates"] >= 1


def test_update_with_alarm_reaches_hmi_over_ae():
    sim, system = build()
    system.frontend.add_item("sensor", initial=0)
    system.master.attach_handlers("sensor", HandlerChain([Monitor(high=100.0)]))
    system.start()
    system.frontend.inject_update("sensor", 500)
    sim.run(until=sim.now + 0.5)
    assert system.hmi.value_of("sensor") == 500
    alarms = system.hmi.alarms("sensor")
    assert len(alarms) == 1
    assert "above high limit" in alarms[0].message
    # The event is also persisted in the Master's storage (paper §II-A).
    assert len(system.master.storage.query(item_id="sensor")) == 1


def test_scale_handler_transforms_before_hmi():
    sim, system = build()
    system.frontend.add_item("voltage", initial=0)
    system.master.attach_handlers("voltage", HandlerChain([Scale(factor=0.1)]))
    system.start()
    system.frontend.inject_update("voltage", 2305)
    sim.run(until=sim.now + 0.5)
    assert system.hmi.value_of("voltage") == pytest.approx(230.5)


def test_write_value_flow_roundtrip():
    """Paper Figure 4: HMI -> Master -> Frontend -> Master -> HMI."""
    sim, system = build()
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()

    def operator():
        result = yield system.hmi.write("actuator", 7)
        return result

    result = sim.run_process(operator(), until=sim.now + 5)
    assert result.success
    sim.run(until=sim.now + 0.5)
    assert system.hmi.value_of("actuator") == 7
    assert system.frontend.items.get("actuator").value.value == 7


def test_blocked_write_gets_result_and_event():
    """§II-B-b: a denied write produces a WriteResult *and* an EventUpdate."""
    sim, system = build()
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.master.attach_handlers(
        "actuator", HandlerChain([Block(allowed_operators=("chief",))])
    )
    system.start()

    def operator():
        result = yield system.hmi.write("actuator", 7)
        return result

    result = sim.run_process(operator(), until=sim.now + 5)
    assert not result.success
    assert "not authorized" in result.reason
    sim.run(until=sim.now + 0.5)
    denied = [e for e in system.hmi.events if e.event_type == "write-denied"]
    assert len(denied) == 1
    assert system.frontend.stats["writes"] == 0  # never reached the field


def test_write_to_unknown_item_fails_cleanly():
    sim, system = build()
    system.frontend.add_item("known", initial=0)
    system.start()

    def operator():
        result = yield system.hmi.write("ghost", 1)
        return result

    result = sim.run_process(operator(), until=sim.now + 5)
    assert not result.success
    assert "unknown item" in result.reason


def test_write_to_read_only_item_fails():
    sim, system = build()
    system.frontend.add_item("sensor", initial=0, writable=False)
    system.start()

    def operator():
        result = yield system.hmi.write("sensor", 1)
        return result

    result = sim.run_process(operator(), until=sim.now + 5)
    assert not result.success
    assert "not writable" in result.reason


def test_master_write_timeout_when_frontend_dies():
    sim, system = build()
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()
    system.net.crash("frontend-0")

    def operator():
        result = yield system.hmi.write("actuator", 1)
        return result

    result = sim.run_process(operator(), until=sim.now + 30)
    assert not result.success
    assert "timed out" in result.reason
    assert system.master.stats["timeouts"] == 1


def test_override_handler_pins_value_for_hmi():
    sim, system = build()
    system.frontend.add_item("sensor", initial=0)
    override = Override()
    system.master.attach_handlers("sensor", HandlerChain([override]))
    system.start()
    override.activate(999)
    system.frontend.inject_update("sensor", 5)
    sim.run(until=sim.now + 0.5)
    assert system.hmi.value_of("sensor") == 999


def test_full_stack_with_rtu_polling():
    sim = Simulator(seed=2)
    net = make_network(sim)
    system = build_neoscada(sim, net=net)
    RTU(
        sim,
        net,
        "rtu-7",
        process=PowerFeeder(noise=0.0),
        step_interval=0.2,
        writable_registers=(3,),
    )
    system.frontend.add_item("feeder.voltage", rtu="rtu-7", register=0)
    system.frontend.add_item("feeder.breaker", rtu="rtu-7", register=3, writable=True)
    system.master.attach_handlers("feeder.voltage", HandlerChain([Scale(0.1)]))
    system.start()
    sim.run(until=sim.now + 2.0)
    assert system.hmi.value_of("feeder.voltage") == pytest.approx(230.0, rel=0.05)

    def operator():
        result = yield system.hmi.write("feeder.breaker", 0)
        return result

    result = sim.run_process(operator(), until=sim.now + 5)
    assert result.success
    sim.run(until=sim.now + 2.0)
    assert system.hmi.value_of("feeder.voltage") == 0.0


def test_multiple_frontends():
    sim, system = build(frontend_count=2)
    system.frontends[0].add_item("north.sensor", initial=0)
    system.frontends[1].add_item("south.sensor", initial=0)
    system.start()
    system.frontends[0].inject_update("north.sensor", 1)
    system.frontends[1].inject_update("south.sensor", 2)
    sim.run(until=sim.now + 0.5)
    assert system.hmi.value_of("north.sensor") == 1
    assert system.hmi.value_of("south.sensor") == 2
    assert system.master.item_frontend["north.sensor"] == "frontend-0"
    assert system.master.item_frontend["south.sensor"] == "frontend-1"


def test_concurrent_master_exhibits_scheduling_nondeterminism():
    """§III-B(b): with jittered workers, processing order != arrival order.

    This is the property that breaks replication — demonstrated here,
    eliminated in the deterministic core (see test_core_determinism).
    """

    def processed_order(seed):
        sim = Simulator(seed=seed)
        system = build_neoscada(sim, workers=4, jitter=0.5)
        system.frontend.add_item("s", initial=0)
        system.start()
        order = []
        original = system.master.execute

        def spying_execute(kind, message, src):
            if kind == "update":
                order.append(message.value.value)
            return original(kind, message, src)

        system.master.execute = spying_execute
        for i in range(30):
            system.frontend.inject_update("s", i + 1)
        sim.run(until=sim.now + 2)
        return order

    orders = {tuple(processed_order(seed)) for seed in range(5)}
    # Different scheduler seeds produce different application orders.
    assert len(orders) > 1
    # ... and at least one of them differs from arrival order.
    assert any(list(o) != sorted(o) for o in orders)


def test_nondeterministic_timestamps_in_original_master():
    """§III-B(c): two identical masters stamp the same event differently."""

    def event_timestamp(seed):
        sim = Simulator(seed=seed)
        system = build_neoscada(sim, workers=2, jitter=0.5)
        system.frontend.add_item("s", initial=0)
        system.master.attach_handlers("s", HandlerChain([Monitor(high=1.0)]))
        system.start()
        system.frontend.inject_update("s", 100)
        sim.run(until=sim.now + 1)
        return system.master.storage.latest(1)[0].timestamp

    stamps = {event_timestamp(seed) for seed in range(5)}
    assert len(stamps) > 1
