"""Reconfiguration under adversity (satellite of the self-healing PR).

The recovery orchestrator leans on ``Administrator.reconfigure_checked``
in exactly the conditions where a naive admin console wedges: a leader
change in progress, a state transfer racing the membership change, the
suspect being the current leader. These tests pin that behaviour at the
BFT-SMaRt layer, plus the typed failure modes (rejected / timed-out)
and heap/ring kernel parity of a full join-then-leave sequence.
"""

from repro.bftsmart import (
    Administrator,
    CounterService,
    GroupConfig,
    ServiceReplica,
    View,
    build_group,
    build_proxy,
)
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network
from repro.sim import Simulator
from repro.wire import decode, encode


def make_world(seed=1, kernel=None):
    sim = Simulator(seed=seed, kernel=kernel)
    net = Network(sim, latency=ConstantLatency(0.0003))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, request_timeout=0.4, sync_timeout=0.8)
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "admin-c", config, keystore)
    admin = Administrator(proxy, keystore)
    return sim, net, keystore, config, replicas, admin


def make_joiner(sim, net, keystore, config, admin, address="replica-4"):
    """A spare anticipating the post-join view (the orchestrator idiom)."""
    view = admin.proxy.view
    return ServiceReplica(
        sim,
        net,
        address,
        config,
        CounterService(),
        keystore,
        view=View(view.view_id + 1, view.addresses + (address,), view.f),
    )


def run_adds(sim, proxy, count):
    def client():
        result = None
        for _ in range(count):
            raw = yield proxy.invoke_ordered(encode(("add", 1)))
            result = decode(raw)
        return result

    return sim.run_process(client(), until=sim.now + 60)


def checked(sim, admin, horizon=30.0, **kwargs):
    event = admin.reconfigure_checked(**kwargs)
    sim.run(until=sim.now + horizon, stop_on=event)
    assert event.ok
    return event.value


def test_join_applies_during_leader_change():
    """A reconfiguration submitted while the group is electing a new
    leader must ride out the synchronization phase and still apply."""
    sim, net, keystore, config, replicas, admin = make_world(seed=11)
    net.crash("replica-0")  # forces a leader change to replica-1
    joiner = make_joiner(sim, net, keystore, config, admin)
    result = checked(sim, admin, join=("replica-4",))
    assert result.applied
    assert result.view_id == 1
    assert "replica-4" in result.view.addresses
    live = [r for r in replicas[1:]] + [joiner]
    sim.run(until=sim.now + 5)
    assert all(r.view.view_id == 1 for r in live)
    assert all(r.leader == "replica-1" for r in replicas[1:])


def test_join_races_inflight_state_transfer():
    """A membership change deciding while another replica is mid
    state-transfer must not corrupt either: the transfer completes and
    the transferring replica still installs the new view."""
    sim, net, keystore, config, replicas, admin = make_world(seed=12)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    net.crash("replica-2")
    run_adds(sim, proxy, 8)  # replica-2 misses these decisions
    net.recover("replica-2")
    joiner = make_joiner(sim, net, keystore, config, admin)
    result = checked(sim, admin, join=("replica-4",))
    assert result.applied
    sim.run(until=sim.now + 10)
    assert replicas[2].state_transfer.completed >= 1
    assert not replicas[2].state_transfer.in_progress
    assert replicas[2].view.view_id == 1
    assert joiner.view.view_id == 1
    assert run_adds(sim, proxy, 3) == 11


def test_join_then_leave_current_leader():
    """The orchestrator's evict flow applied to the leader itself: join a
    spare, then remove replica-0. The group must re-elect and stay live."""
    sim, net, keystore, config, replicas, admin = make_world(seed=13)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    run_adds(sim, proxy, 3)
    make_joiner(sim, net, keystore, config, admin)
    result = checked(sim, admin, join=("replica-4",))
    assert result.applied and result.view_id == 1
    result = checked(sim, admin, leave=("replica-0",))
    assert result.applied and result.view_id == 2
    assert "replica-0" not in result.view.addresses
    sim.run(until=sim.now + 5)
    assert not replicas[0].active  # a removed replica halts itself
    proxy.update_view(result.view)
    assert run_adds(sim, proxy, 5) == 8


def test_rejected_change_is_not_retried():
    """Shrinking the group below 3f+1 is refused deterministically; the
    checked path must surface the rejection without burning retries."""
    sim, net, keystore, config, replicas, admin = make_world(seed=14)
    result = checked(
        sim, admin, leave=("replica-2", "replica-3"), attempts=3
    )
    assert result.status == "rejected"
    assert result.attempts == 1
    assert all(r.view.view_id == 0 for r in replicas)


def test_unreachable_group_times_out():
    sim, net, keystore, config, replicas, admin = make_world(seed=15)
    for replica in replicas:
        replica.halt()
    result = checked(
        sim, admin, join=("replica-4",), timeout=0.3, attempts=2,
        horizon=60.0,
    )
    assert result.status == "timed-out"
    assert result.attempts == 2
    assert result.view_id is None


def _membership_trace(kernel, seed=21):
    """A scripted join-then-leave sequence; returns its observable story."""
    sim, net, keystore, config, replicas, admin = make_world(
        seed=seed, kernel=kernel
    )
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    run_adds(sim, proxy, 5)
    make_joiner(sim, net, keystore, config, admin)
    first = checked(sim, admin, join=("replica-4",))
    second = checked(sim, admin, leave=("replica-2",))
    proxy.update_view(second.view)
    total = run_adds(sim, proxy, 5)
    sim.run(until=sim.now + 5)
    return (
        first.status,
        first.view_id,
        second.status,
        second.view_id,
        tuple(sorted(second.view.addresses)),
        total,
        round(sim.now, 9),
    )


def test_reconfiguration_kernel_parity():
    """The same seeded membership-change story on both event kernels."""
    assert _membership_trace("heap") == _membership_trace("ring")
