"""Tests for operator event-history queries (DA/AE read-only path)."""

import pytest

from repro.core import build_neoscada, build_smartscada
from repro.neoscada import HandlerChain, Monitor
from repro.sim import Simulator


def raise_alarms(sim, system, count, item="sensor"):
    for i in range(count):
        system.frontend.inject_update(item, 1000 + i)
    sim.run(until=sim.now + 0.5)


def test_unreplicated_history_query():
    sim = Simulator(seed=1)
    system = build_neoscada(sim)
    system.frontend.add_item("sensor", initial=0)
    system.master.attach_handlers("sensor", HandlerChain([Monitor(high=100.0)]))
    system.start()
    raise_alarms(sim, system, 5)

    def operator():
        events = yield system.hmi.query_events("sensor", event_type="alarm")
        return events

    events = sim.run_process(operator(), until=sim.now + 5)
    assert len(events) == 5
    assert all(e.event_type == "alarm" for e in events)


def test_replicated_history_query_uses_unordered_path():
    sim = Simulator(seed=2)
    system = build_smartscada(sim)
    system.frontend.add_item("sensor", initial=0)
    system.attach_handlers("sensor", lambda: HandlerChain([Monitor(high=100.0)]))
    system.start()
    raise_alarms(sim, system, 4)
    decided_before = system.replicas[0].stats["decided"]

    def operator():
        events = yield system.hmi.query_events("sensor", event_type="alarm")
        return events

    events = sim.run_process(operator(), until=sim.now + 10)
    assert len(events) == 4
    assert [e.event_id for e in events] == sorted(
        (e.event_id for e in events),
        key=lambda eid: tuple(int(p) for p in eid.split("-")[1:]),
    )
    # No new consensus instance was spent on the read.
    assert system.replicas[0].stats["decided"] == decided_before


def test_query_filters_and_limit():
    sim = Simulator(seed=3)
    system = build_neoscada(sim)
    system.frontend.add_item("a", initial=0)
    system.frontend.add_item("b", initial=0)
    for item in ("a", "b"):
        system.master.attach_handlers(item, HandlerChain([Monitor(high=100.0)]))
    system.start()
    raise_alarms(sim, system, 3, item="a")
    raise_alarms(sim, system, 2, item="b")

    def operator():
        only_a = yield system.hmi.query_events("a")
        limited = yield system.hmi.query_events("*", limit=2)
        return only_a, limited

    only_a, limited = sim.run_process(operator(), until=sim.now + 5)
    assert {e.item_id for e in only_a} == {"a"}
    assert len(limited) == 2


def test_replicated_query_with_one_replica_down():
    """n-f = 3 matching replies still possible with one replica crashed."""
    sim = Simulator(seed=4)
    system = build_smartscada(sim)
    system.frontend.add_item("sensor", initial=0)
    system.attach_handlers("sensor", lambda: HandlerChain([Monitor(high=100.0)]))
    system.start()
    raise_alarms(sim, system, 3)
    system.net.crash("replica-3")

    def operator():
        events = yield system.hmi.query_events("sensor")
        return events

    events = sim.run_process(operator(), until=sim.now + 10)
    assert len(events) == 3


def test_unreplicated_value_query():
    sim = Simulator(seed=6)
    system = build_neoscada(sim)
    system.frontend.add_item("sensor", initial=0)
    system.start()
    system.frontend.inject_update("sensor", 42)
    sim.run(until=sim.now + 0.5)

    def operator():
        value = yield system.hmi.query_value("sensor")
        missing = yield system.hmi.query_value("no-such-item")
        return value, missing

    value, missing = sim.run_process(operator(), until=sim.now + 5)
    assert value.value == 42
    assert missing is None


def test_replicated_value_query_uses_unordered_path():
    sim = Simulator(seed=7)
    system = build_smartscada(sim)
    system.frontend.add_item("sensor", initial=0)
    system.start()
    system.frontend.inject_update("sensor", 17)
    sim.run(until=sim.now + 0.5)
    decided_before = system.replicas[0].stats["decided"]

    def operator():
        value = yield system.hmi.query_value("sensor")
        return value

    value = sim.run_process(operator(), until=sim.now + 10)
    assert value.value == 17
    # No new consensus instance was spent on the read...
    assert system.replicas[0].stats["decided"] == decided_before
    # ...because it rode the unordered path, without needing a fallback.
    assert system.proxy_hmi.stats["unordered_reads"] >= 1
    assert system.proxy_hmi.stats["ordered_read_fallbacks"] == 0


def test_diverging_value_read_falls_back_to_ordered():
    """A split read quorum fails fast and the proxy re-reads in order."""
    from repro.neoscada.values import DataValue, Quality

    sim = Simulator(seed=8)
    system = build_smartscada(sim)
    system.frontend.add_item("sensor", initial=0)
    system.start()
    system.frontend.inject_update("sensor", 17)
    sim.run(until=sim.now + 0.5)
    # Two replicas serve stale/garbled values (beyond the f=1 the
    # unordered n-f quorum tolerates), each a different one: no reply
    # group can reach n-f = 3, but the honest pair still forms the f+1
    # ordered-read quorum.
    for index, bogus in ((2, -1), (3, -2)):
        item = system.masters[index].items.ensure("sensor")
        item.value = DataValue(bogus, Quality.GOOD, sim.now)

    def operator():
        value = yield system.hmi.query_value("sensor")
        return value

    value = sim.run_process(operator(), until=sim.now + 10)
    assert value.value == 17
    assert system.proxy_hmi.stats["ordered_read_fallbacks"] == 1
    assert system.proxy_hmi.bft.stats["read_divergences"] == 1


def test_mutations_cannot_ride_the_unordered_path():
    """The adapter refuses non-read-only operations outside consensus."""
    from repro.core import SmartScadaConfig, build_smartscada
    from repro.neoscada.messages import WriteValue
    from repro.wire import decode, encode

    sim = Simulator(seed=5)
    system = build_smartscada(sim)
    system.frontend.add_item("actuator", initial=0, writable=True)
    system.start()
    proxy = system.proxy_hmi.bft
    sneaky = proxy.invoke_unordered(
        encode(WriteValue("actuator", 666, "op", proxy.client_id))
    )
    results = {}
    sneaky.add_callback(lambda ev: results.setdefault("ok", ev.ok and decode(ev.value)))
    sim.run(until=sim.now + 3, stop_on=sneaky)
    # Replicas answer with a deterministic error; no state changed.
    status = results["ok"]
    assert status and status[0] == "error"
    assert all(m.items.get("actuator").value.value != 666 for m in system.masters)
