"""The fleet control plane is observation, never scheduling.

Sampling the scoreboard and evaluating SLOs must leave a seeded run
bit-identical: same campaign fingerprint, same per-replica decided
streams, same global AE order — on both event kernels. This is the
same contract span tracing holds (``tests/test_trace_determinism.py``),
extended to the whole observability control plane.
"""

from dataclasses import replace

import pytest

from repro.chaos import get_scenario, run_campaign
from repro.neoscada import HandlerChain, Monitor
from repro.obs.fleet import FleetScoreboard
from repro.obs.slo import SloEngine
from repro.shard import ShardedScadaConfig, build_sharded_scada
from repro.sim import Simulator

KERNELS = ("heap", "ring")
SENSORS = [f"plant.s{i}" for i in range(6)]


# ----------------------------------------------------------------------
# campaign fingerprints
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kernel", KERNELS)
def test_campaign_fingerprint_invariant_with_fleet(kernel):
    """A sharded chaos campaign fingerprints identically with the
    scoreboard + SLO engine on or off (they piggyback on the monitor
    poll grid and add zero events)."""
    scenario = get_scenario("shard-leader-kills")
    base = replace(scenario.config(seed=4), kernel=kernel)
    plain = run_campaign(scenario.schedule(), base)
    fleet = run_campaign(scenario.schedule(), replace(base, fleet=True))
    assert plain.fingerprint() == fleet.fingerprint()
    assert plain.fleet is None and plain.slo_violations == []
    # The diagnostics side actually observed the drill.
    assert fleet.fleet is not None
    assert fleet.fleet["shards"] == 2
    assert fleet.fleet["samples"]
    # Both group leaders were killed: the availability budget burned on
    # both shards, and the run ended green again.
    burned = {
        v["shard"] for v in fleet.slo_violations
        if v["slo"] == "shard-availability"
    }
    assert burned == {0, 1}
    assert fleet.fleet["status"] == "ok"


def test_campaign_fleet_report_is_kernel_invariant():
    """The scoreboard reads the same health story from either kernel."""
    scenario = get_scenario("shard-leader-kills")
    reports = {}
    for kernel in KERNELS:
        config = replace(scenario.config(seed=4), kernel=kernel, fleet=True)
        reports[kernel] = run_campaign(scenario.schedule(), config)
    assert (
        reports["heap"].slo_violations == reports["ring"].slo_violations
    )
    assert (
        reports["heap"].fleet["transitions"]
        == reports["ring"].fleet["transitions"]
    )


# ----------------------------------------------------------------------
# direct 2-shard workload: decided streams + global AE order
# ----------------------------------------------------------------------

def run_workload(kernel: str, observed: bool, seed: int = 6):
    sim = Simulator(seed=seed, kernel=kernel)
    system = build_sharded_scada(sim, config=ShardedScadaConfig(shards=2))
    for sensor in SENSORS:
        system.frontend.add_item(sensor, initial=20)
        system.attach_handlers(
            sensor, lambda: HandlerChain([Monitor(high=80.0)])
        )
    system.frontend.add_item("plant.actuator", initial=0, writable=True)
    system.start()
    scoreboard = (
        FleetScoreboard(system, slo_engine=SloEngine(sim=sim))
        if observed
        else None
    )

    def updates():
        for rnd in range(4):
            for i, sensor in enumerate(SENSORS):
                value = 90 if (i + rnd) % 3 == 0 else 30
                system.frontend.inject_update(sensor, value)
                yield sim.timeout(0.02)

    def writes():
        for number in range(3):
            yield sim.timeout(0.3)
            system.hmi.write("plant.actuator", number + 1)

    sim.process(updates())
    sim.process(writes())
    deadline = 2.0
    while sim.now < deadline:
        sim.run(until=min(sim.now + 0.25, deadline))
        if scoreboard is not None:
            scoreboard.sample()
    system.flush_events()
    sim.run(until=sim.now + 0.3)
    if scoreboard is not None:
        scoreboard.sample()
    return sim, system, scoreboard


def decided_streams(system):
    return [
        [(cid, value) for cid, value, _ts in pm.replica.decision_log]
        for pm in system.proxy_masters
    ]


def ae_order(system):
    return [
        (e.event_id, e.item_id, e.event_type, e.value, e.timestamp)
        for e in system.hmi.events
    ]


@pytest.mark.parametrize("kernel", KERNELS)
def test_scoreboard_on_off_identical_runs(kernel):
    sim_off, system_off, _ = run_workload(kernel, observed=False)
    sim_on, system_on, scoreboard = run_workload(kernel, observed=True)
    assert sim_on.dispatched == sim_off.dispatched
    assert sim_on.now == sim_off.now
    assert decided_streams(system_on) == decided_streams(system_off)
    assert ae_order(system_on) == ae_order(system_off)
    assert ae_order(system_on), "workload delivered no events"
    # The observed run really sampled a healthy 2-shard fleet.
    assert scoreboard.latest.status == "ok"
    assert len(scoreboard.latest.shards) == 2
    assert scoreboard.latest.violations == 0
