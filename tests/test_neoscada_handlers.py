"""Unit tests for the handler framework and the four default handlers."""

import pytest

from repro.neoscada import (
    Block,
    DataValue,
    HandlerChain,
    HandlerContext,
    Monitor,
    Override,
    Quality,
    Scale,
    Severity,
)


def make_ctx(is_write=False, operator="", now=10.0):
    counter = {"n": 0}

    def event_ids():
        counter["n"] += 1
        return f"e{counter['n']}"

    return HandlerContext(
        item_id="item-1",
        now=now,
        event_id_source=event_ids,
        is_write=is_write,
        operator=operator,
    )


# -- Scale ---------------------------------------------------------------


def test_scale_applies_factor_and_offset():
    result = Scale(factor=0.1, offset=-5.0).process(DataValue(2300), make_ctx())
    assert result.value.value == pytest.approx(225.0)
    assert not result.events


def test_scale_passes_non_numeric_through():
    handler = Scale(factor=2.0)
    for raw in ("text", None, True):
        assert handler.process(DataValue(raw), make_ctx()).value.value == raw


def test_scale_skips_bad_quality():
    value = DataValue(100, Quality.BAD, 0.0)
    assert Scale(factor=2.0).process(value, make_ctx()).value is value


# -- Override --------------------------------------------------------------


def test_override_inactive_is_identity():
    value = DataValue(7)
    assert Override().process(value, make_ctx()).value is value


def test_override_active_replaces_value_and_raises_event():
    handler = Override()
    handler.activate(99)
    result = handler.process(DataValue(7), make_ctx())
    assert result.value.value == 99
    assert result.value.quality is Quality.BLOCKED
    assert [e.event_type for e in result.events] == ["override"]
    handler.deactivate()
    assert handler.process(DataValue(7), make_ctx()).value.value == 7


def test_override_state_roundtrip():
    handler = Override()
    handler.activate(5)
    restored = Override()
    restored.restore(handler.state())
    assert restored.active and restored.value == 5


# -- Monitor -----------------------------------------------------------------


def test_monitor_requires_a_bound():
    with pytest.raises(ValueError):
        Monitor()


def test_monitor_raises_alarm_above_high():
    result = Monitor(high=100.0).process(DataValue(150), make_ctx())
    assert len(result.events) == 1
    event = result.events[0]
    assert event.event_type == "alarm"
    assert event.severity is Severity.ALARM
    assert event.timestamp == 10.0
    assert event.event_id == "e1"


def test_monitor_raises_alarm_below_low():
    result = Monitor(low=10.0).process(DataValue(5), make_ctx())
    assert result.events[0].event_type == "alarm"
    assert "below low limit" in result.events[0].message


def test_monitor_silent_in_bounds():
    handler = Monitor(high=100.0, low=0.0)
    assert not handler.process(DataValue(50), make_ctx()).events


def test_monitor_level_triggered_alarms_every_update():
    handler = Monitor(high=100.0)
    for _ in range(3):
        assert handler.process(DataValue(150), make_ctx()).events


def test_monitor_edge_triggered_alarms_once():
    handler = Monitor(high=100.0, edge_triggered=True)
    first = handler.process(DataValue(150), make_ctx())
    second = handler.process(DataValue(160), make_ctx())
    cleared = handler.process(DataValue(50), make_ctx())
    assert len(first.events) == 1
    assert not second.events
    assert cleared.events[0].event_type == "alarm-cleared"


def test_monitor_ignores_non_numeric_and_bad_quality():
    handler = Monitor(high=1.0)
    assert not handler.process(DataValue("x"), make_ctx()).events
    assert not handler.process(DataValue(5, Quality.BAD, 0.0), make_ctx()).events


# -- Block ---------------------------------------------------------------------


def test_block_ignores_reads():
    result = Block(blocked=True).process(DataValue(1), make_ctx(is_write=False))
    assert not result.blocked


def test_block_denies_all_when_locked():
    result = Block(blocked=True).process(DataValue(1), make_ctx(is_write=True))
    assert result.blocked
    assert "maintenance" in result.block_reason
    assert result.events[0].event_type == "write-denied"


def test_block_operator_allowlist():
    handler = Block(allowed_operators=("alice",))
    ok = handler.process(DataValue(1), make_ctx(is_write=True, operator="alice"))
    bad = handler.process(DataValue(1), make_ctx(is_write=True, operator="bob"))
    assert not ok.blocked
    assert bad.blocked and "not authorized" in bad.block_reason


def test_block_predicate_policy():
    def in_range(value, ctx):
        ok = 0 <= value.value <= 10
        return ok, "" if ok else f"{value.value} outside interlock range"

    handler = Block(predicate=in_range)
    assert not handler.process(DataValue(5), make_ctx(is_write=True)).blocked
    denied = handler.process(DataValue(50), make_ctx(is_write=True))
    assert denied.blocked and "interlock" in denied.block_reason


# -- HandlerChain ------------------------------------------------------------------


def test_chain_feeds_values_through_in_order():
    chain = HandlerChain([Scale(factor=0.1), Monitor(high=100.0)])
    result = chain.process(DataValue(2000), make_ctx())
    assert result.value.value == pytest.approx(200.0)
    assert len(result.events) == 1  # scaled value exceeds the threshold


def test_chain_collects_events_from_all_handlers():
    override = Override()
    override.activate(500)
    chain = HandlerChain([override, Monitor(high=100.0)])
    result = chain.process(DataValue(1), make_ctx())
    # Override event + alarm on the overridden value... but the overridden
    # value carries BLOCKED quality, so Monitor skips it.
    assert [e.event_type for e in result.events] == ["override"]


def test_chain_blocking_short_circuits():
    sentinel = Monitor(high=0.0)  # would alarm on anything positive
    chain = HandlerChain([Block(blocked=True), sentinel])
    result = chain.process(DataValue(5), make_ctx(is_write=True))
    assert result.blocked
    assert [e.event_type for e in result.events] == ["write-denied"]


def test_chain_cost_sums_handler_costs():
    chain = HandlerChain([Scale(), Monitor(high=1.0), Block()])
    assert chain.cost == pytest.approx(
        Scale.cost + Monitor.cost + Block.cost
    )


def test_chain_state_roundtrip():
    chain = HandlerChain([Override(), Monitor(high=1.0)])
    chain.handlers[0].activate(9)
    chain.handlers[1].in_alarm = True
    other = HandlerChain([Override(), Monitor(high=1.0)])
    other.restore(chain.state())
    assert other.handlers[0].active
    assert other.handlers[1].in_alarm


def test_chain_restore_shape_mismatch_rejected():
    chain = HandlerChain([Override()])
    with pytest.raises(ValueError):
        chain.restore(((), ()))
