"""Unit tests for the simulated network: delivery, latency, faults, trace."""

import pytest

from repro.net import (
    ConstantLatency,
    Delay,
    Drop,
    Duplicate,
    LanLatency,
    Network,
    NetworkTrace,
    Partition,
    Tamper,
    UniformLatency,
    UnknownEndpoint,
)
from repro.sim import Simulator


def make_net(trace: bool = False, latency: float = 0.001):
    sim = Simulator(seed=1)
    net = Network(
        sim,
        latency=ConstantLatency(latency),
        trace=NetworkTrace(enabled=trace),
    )
    return sim, net


def test_basic_delivery_to_inbox():
    sim, net = make_net()
    a = net.endpoint("a")
    b = net.endpoint("b")

    def receiver():
        item = yield b.inbox.get()
        return (sim.now, item)

    proc = sim.process(receiver())
    a.send("b", "hello")
    sim.run()
    assert proc.value == (0.001, "hello")


def test_delivery_to_handler():
    sim, net = make_net()
    a = net.endpoint("a")
    b = net.endpoint("b")
    seen = []
    b.set_handler(lambda payload, src: seen.append((payload, src)))
    a.send("b", {"k": 1})
    sim.run()
    assert seen == [({"k": 1}, "a")]


def test_send_to_unknown_endpoint_raises():
    sim, net = make_net()
    a = net.endpoint("a")
    with pytest.raises(UnknownEndpoint):
        a.send("ghost", "x")


def test_messages_on_one_link_keep_order_with_constant_latency():
    sim, net = make_net()
    a = net.endpoint("a")
    b = net.endpoint("b")
    seen = []
    b.set_handler(lambda payload, src: seen.append(payload))
    for i in range(10):
        a.send("b", i)
    sim.run()
    assert seen == list(range(10))


def test_link_override_changes_delay():
    sim, net = make_net(latency=1.0)
    a = net.endpoint("a")
    b = net.endpoint("b")
    net.set_link("a", "b", ConstantLatency(0.25))
    times = []
    b.set_handler(lambda payload, src: times.append(sim.now))
    a.send("b", "fast")
    sim.run()
    assert times == [0.25]


def test_local_pair_is_symmetric_and_fast():
    sim, net = make_net(latency=1.0)
    a = net.endpoint("hmi")
    b = net.endpoint("proxy-hmi")
    net.set_local_pair("hmi", "proxy-hmi")
    times = []
    b.set_handler(lambda payload, src: times.append(sim.now))
    a.set_handler(lambda payload, src: times.append(sim.now))
    a.send("proxy-hmi", 1)
    b.send("hmi", 2)
    sim.run()
    assert all(t < 0.001 for t in times)


def test_crashed_endpoint_receives_nothing():
    sim, net = make_net()
    a = net.endpoint("a")
    b = net.endpoint("b")
    seen = []
    b.set_handler(lambda payload, src: seen.append(payload))
    net.crash("b")
    a.send("b", "lost")
    sim.run()
    assert seen == []
    net.recover("b")
    a.send("b", "found")
    sim.run()
    assert seen == ["found"]


def test_crashed_endpoint_sends_nothing():
    sim, net = make_net()
    a = net.endpoint("a")
    b = net.endpoint("b")
    seen = []
    b.set_handler(lambda payload, src: seen.append(payload))
    net.crash("a")
    a.send("b", "x")
    sim.run()
    assert seen == []


def test_drop_rule_filters_by_kind():
    sim, net = make_net()
    a = net.endpoint("a")
    b = net.endpoint("b")
    seen = []
    b.set_handler(lambda payload, src: seen.append(payload))
    net.faults.add(Drop(kind="str"))
    a.send("b", "dropped")
    a.send("b", 42)
    sim.run()
    assert seen == [42]


def test_drop_rule_max_count_disarms():
    sim, net = make_net()
    a = net.endpoint("a")
    b = net.endpoint("b")
    seen = []
    b.set_handler(lambda payload, src: seen.append(payload))
    net.faults.add(Drop(dst="b", max_count=2))
    for i in range(5):
        a.send("b", i)
    sim.run()
    assert seen == [2, 3, 4]


def test_drop_rule_glob_patterns():
    sim, net = make_net()
    src = net.endpoint("client-1")
    seen = {}
    for name in ("replica-0", "replica-1", "other"):
        ep = net.endpoint(name)
        seen[name] = []
        ep.set_handler(lambda payload, _src, n=name: seen[n].append(payload))
    net.faults.add(Drop(dst="replica-*"))
    for name in seen:
        src.send(name, "m")
    sim.run()
    assert seen == {"replica-0": [], "replica-1": [], "other": ["m"]}


def test_delay_rule_adds_latency():
    sim, net = make_net(latency=0.001)
    a = net.endpoint("a")
    b = net.endpoint("b")
    times = []
    b.set_handler(lambda payload, src: times.append(sim.now))
    net.faults.add(Delay(0.5, dst="b"))
    a.send("b", "slow")
    sim.run()
    assert times == [pytest.approx(0.501)]


def test_duplicate_rule_delivers_copies():
    sim, net = make_net()
    a = net.endpoint("a")
    b = net.endpoint("b")
    seen = []
    b.set_handler(lambda payload, src: seen.append(payload))
    net.faults.add(Duplicate(copies=2, spacing=0.01))
    a.send("b", "dup")
    sim.run()
    assert seen == ["dup", "dup", "dup"]


def test_tamper_rule_rewrites_payload():
    sim, net = make_net()
    a = net.endpoint("a")
    b = net.endpoint("b")
    seen = []
    b.set_handler(lambda payload, src: seen.append(payload))
    net.faults.add(Tamper(lambda payload: payload + "-evil"))
    a.send("b", "msg")
    sim.run()
    assert seen == ["msg-evil"]


def test_partition_blocks_cross_group_until_heal():
    sim, net = make_net()
    for name in ("r0", "r1", "r2"):
        net.endpoint(name)
    seen = []
    net.endpoint("r2").set_handler(lambda payload, src: seen.append(payload))
    rule = net.faults.add(Partition([["r0", "r1"], ["r2"]]))
    net.endpoint("r0").send("r2", "blocked")
    sim.run()
    assert seen == []
    rule.heal()
    net.endpoint("r0").send("r2", "after-heal")
    sim.run()
    assert seen == ["after-heal"]


def test_partition_allows_intra_group():
    sim, net = make_net()
    for name in ("r0", "r1", "r2"):
        net.endpoint(name)
    seen = []
    net.endpoint("r1").set_handler(lambda payload, src: seen.append(payload))
    net.faults.add(Partition([["r0", "r1"], ["r2"]]))
    net.endpoint("r0").send("r1", "ok")
    sim.run()
    assert seen == ["ok"]


def test_probabilistic_drop_is_seeded():
    def run(seed):
        sim = Simulator(seed=seed)
        net = Network(sim, latency=ConstantLatency(0.001))
        a = net.endpoint("a")
        b = net.endpoint("b")
        seen = []
        b.set_handler(lambda payload, src: seen.append(payload))
        net.faults.add(Drop(probability=0.5))
        for i in range(100):
            a.send("b", i)
        sim.run()
        return seen

    assert run(3) == run(3)
    assert 20 < len(run(3)) < 80


def test_trace_records_hops():
    sim, net = make_net(trace=True)
    a = net.endpoint("a")
    b = net.endpoint("b")
    b.set_handler(lambda payload, src: None)
    a.send("b", "payload", kind="ItemUpdate")
    a.send("b", "payload2", kind="ItemUpdate")
    a.send("b", 1, kind="WriteValue")
    sim.run()
    assert net.trace.count() == 3
    assert net.trace.count(kind="ItemUpdate") == 2
    assert net.trace.path(kind="WriteValue") == [("a", "b")]
    assert net.trace.kinds() == {"ItemUpdate": 2, "WriteValue": 1}
    hop = net.trace.hops[0]
    assert hop.delivered_at > hop.sent_at
    assert hop.size > 0


def test_trace_disabled_records_nothing():
    sim, net = make_net(trace=False)
    a = net.endpoint("a")
    b = net.endpoint("b")
    b.set_handler(lambda payload, src: None)
    a.send("b", "x")
    sim.run()
    assert net.trace.count() == 0


def test_lan_latency_scales_with_size():
    model = LanLatency(base=0.0001, jitter=0.0, bandwidth=1_000_000.0)
    assert model.delay(0) == pytest.approx(0.0001)
    assert model.delay(1_000_000) == pytest.approx(1.0001)


def test_uniform_latency_band():
    import random

    model = UniformLatency(0.1, 0.2, random.Random(0))
    for _ in range(50):
        assert 0.1 <= model.delay(100) <= 0.2


def test_latency_validation():
    import random

    with pytest.raises(ValueError):
        ConstantLatency(-1)
    with pytest.raises(ValueError):
        UniformLatency(0.2, 0.1, random.Random(0))
    with pytest.raises(ValueError):
        LanLatency(bandwidth=0)


def test_fault_rule_validation():
    with pytest.raises(ValueError):
        Drop(probability=1.5)
    with pytest.raises(ValueError):
        Delay(-0.1)
    with pytest.raises(ValueError):
        Duplicate(copies=0)


def test_network_counters():
    sim, net = make_net()
    a = net.endpoint("a")
    b = net.endpoint("b")
    b.set_handler(lambda payload, src: None)
    net.faults.add(Drop(kind="int"))
    a.send("b", 1)
    a.send("b", "keep")
    sim.run()
    assert net.sent == 2
    assert net.delivered == 1
