"""Focused tests for the client proxy: voting, retransmission, pushes."""

import pytest

from repro.bftsmart import (
    CounterService,
    EchoService,
    GroupConfig,
    PushMessage,
    build_group,
    build_proxy,
)
from repro.bftsmart.client import PushVoter
from repro.bftsmart.view import View
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Drop, Network
from repro.sim import Simulator
from repro.wire import decode, encode


def make_world(seed=1, **config_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.0003))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, **config_kwargs)
    return sim, net, keystore, config


# -- PushVoter in isolation ----------------------------------------------------


VIEW = View(0, ("r0", "r1", "r2", "r3"), 1)


def make_voter():
    voter = PushVoter(lambda: VIEW)
    delivered = []
    voter.set_handler("s", lambda order, payload: delivered.append((order, payload)))
    return voter, delivered


def push(replica, order=(1, 0, 1), payload=b"data", stream="s"):
    return PushMessage(
        replica=replica, client_id="c", stream=stream, order=order, payload=payload
    )


def test_voter_delivers_at_f_plus_1():
    voter, delivered = make_voter()
    voter.on_push(push("r0"))
    assert delivered == []
    voter.on_push(push("r1"))
    assert delivered == [((1, 0, 1), b"data")]


def test_voter_delivers_exactly_once():
    voter, delivered = make_voter()
    for replica in ("r0", "r1", "r2", "r3"):
        voter.on_push(push(replica))
    assert len(delivered) == 1


def test_voter_same_replica_cannot_vote_twice():
    voter, delivered = make_voter()
    voter.on_push(push("r0"))
    voter.on_push(push("r0"))
    voter.on_push(push("r0"))
    assert delivered == []


def test_voter_mismatched_payloads_do_not_combine():
    voter, delivered = make_voter()
    voter.on_push(push("r0", payload=b"genuine"))
    voter.on_push(push("r1", payload=b"forged!"))
    assert delivered == []
    voter.on_push(push("r2", payload=b"genuine"))
    assert delivered == [((1, 0, 1), b"genuine")]


def test_voter_ignores_non_members():
    voter, delivered = make_voter()
    voter.on_push(push("intruder-1"))
    voter.on_push(push("intruder-2"))
    assert delivered == []


def test_voter_streams_are_independent():
    voter, delivered = make_voter()
    other = []
    voter.set_handler("other", lambda order, payload: other.append(order))
    voter.on_push(push("r0", stream="other"))
    voter.on_push(push("r1", stream="other"))
    assert other == [(1, 0, 1)]
    assert delivered == []


def test_voter_orders_are_independent():
    voter, delivered = make_voter()
    voter.on_push(push("r0", order=(1, 0, 1)))
    voter.on_push(push("r1", order=(2, 0, 1)))
    assert delivered == []
    voter.on_push(push("r1", order=(1, 0, 1)))
    voter.on_push(push("r0", order=(2, 0, 1)))
    assert [order for order, _p in delivered] == [(1, 0, 1), (2, 0, 1)]


def test_voter_stream_without_handler_counts_delivery():
    voter, _delivered = make_voter()
    voter.on_push(push("r0", stream="unclaimed"))
    voter.on_push(push("r1", stream="unclaimed"))
    assert voter.delivered_count == 1


# -- proxy behaviour over the network ---------------------------------------------


def test_invoke_fails_after_max_attempts():
    sim, net, keystore, config = make_world()
    build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore, invoke_timeout=0.1)
    proxy.max_attempts = 3
    net.faults.add(Drop(kind="ClientRequest"))  # nothing ever arrives
    event = proxy.invoke_ordered(encode(("add", 1)))
    failed = {}
    event.add_callback(lambda ev: failed.setdefault("exc", ev.exception))
    sim.run(until=sim.now + 5)
    assert isinstance(failed["exc"], TimeoutError)
    assert proxy.stats["failures"] == 1


def test_sequences_are_monotonic_per_proxy():
    sim, net, keystore, config = make_world()
    build_group(sim, net, config, EchoService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    events = [proxy.invoke_ordered(b"x") for _ in range(5)]
    sequences = [inv.request.sequence for inv in proxy._pending.values()]
    assert sequences == sorted(sequences)
    for event in events:
        event.defused = True
    sim.run(until=sim.now + 5)


def test_two_proxies_are_isolated():
    sim, net, keystore, config = make_world()
    replicas = build_group(sim, net, config, CounterService, keystore)
    alice = build_proxy(sim, net, "alice", config, keystore)
    bob = build_proxy(sim, net, "bob", config, keystore)

    def run_all():
        a = alice.invoke_ordered(encode(("add", 1)))
        b = bob.invoke_ordered(encode(("add", 2)))
        values = yield sim.all_of([a, b])
        return [decode(v) for v in values]

    sim.run_process(run_all(), until=sim.now + 10)
    sim.run(until=sim.now + 1)
    assert all(r.service.value == 3 for r in replicas)


def test_replies_from_outside_view_ignored():
    sim, net, keystore, config = make_world()
    build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    from repro.bftsmart.channel import SecureChannel
    from repro.bftsmart.messages import Reply

    # A forger with valid channel keys but not a view member sends f+1
    # matching (bogus) replies for the next sequence.
    forger_endpoint = net.endpoint("forger")
    forger = SecureChannel(forger_endpoint, keystore)
    event = proxy.invoke_ordered(encode(("add", 1)))
    for name in ("forger", "forger"):  # same sender: also dedup-protected
        forger.send(
            "client-1",
            Reply(
                replica="forger",
                client_id="client-1",
                sequence=0,
                result=b"bogus",
                view_id=0,
                regency=0,
            ),
        )
    sim.run(until=sim.now + 2, stop_on=event)
    assert event.ok
    assert decode(event.value) == 1  # honest result, not b"bogus"
