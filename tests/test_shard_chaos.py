"""Chaos drills against the sharded deployment.

The independence claim under test: each group tolerates its *own* ``f``
faults, so the per-shard fault budget replaces the global one — two
simultaneous leader kills are fatal to one group but routine when they
land on two different groups.
"""

import pytest

from repro.chaos import (
    ChaosBudgetError,
    CrashReplica,
    KillLeader,
    Schedule,
    get_scenario,
    run_scenario,
)
from repro.chaos.campaign import CampaignConfig


def test_budget_rejects_two_simultaneous_faults_in_one_group():
    schedule = Schedule([
        KillLeader(at=1.0, duration=2.0, shard=0),
        CrashReplica(at=1.5, duration=2.0, index=1),  # index 1 -> shard 0
    ])
    with pytest.raises(ChaosBudgetError, match="shard 0"):
        schedule.validate_budget(f=1, horizon=10.0, n=4, shards=2)


def test_budget_admits_the_same_faults_spread_across_groups():
    schedule = Schedule([
        KillLeader(at=1.0, duration=2.0, shard=0),
        KillLeader(at=1.0, duration=2.0, shard=1),
        CrashReplica(at=1.5, duration=2.0, index=5),  # index 5 -> shard 1
    ])
    with pytest.raises(ChaosBudgetError):
        # Shard 1 takes two overlapping faults: still over budget.
        schedule.validate_budget(f=1, horizon=10.0, n=4, shards=2)
    spread = Schedule([
        KillLeader(at=1.0, duration=2.0, shard=0),
        KillLeader(at=1.0, duration=2.0, shard=1),
        CrashReplica(at=4.0, duration=2.0, index=5),  # after shard 1 healed
    ])
    spread.validate_budget(f=1, horizon=10.0, n=4, shards=2)


def test_single_shard_budget_is_the_classic_global_one():
    schedule = Schedule([
        KillLeader(at=1.0, duration=2.0),
        CrashReplica(at=1.5, duration=2.0, index=2),
    ])
    with pytest.raises(ChaosBudgetError):
        schedule.validate_budget(f=1, horizon=10.0, n=4, shards=1)


def test_fault_shard_resolution():
    assert KillLeader(at=1.0, duration=1.0, shard=1).fault_shard(4) == 1
    assert CrashReplica(at=1.0, duration=1.0, index=6).fault_shard(4) == 1
    assert CrashReplica(at=1.0, duration=1.0, index=2).fault_shard(4) == 0


def test_shard_leader_kills_scenario_is_registered_for_two_shards():
    scenario = get_scenario("shard-leader-kills")
    assert scenario.overrides["shards"] == 2
    assert not scenario.expect_violation
    kills = scenario.schedule()
    assert {a.shard for a in kills} == {0, 1}


def test_simultaneous_leader_kills_in_two_groups_stay_green():
    """The flagship drill: both groups lose their leader at the same
    instant; each group's own view change absorbs it, every safety and
    liveness monitor stays green."""
    report = run_scenario("shard-leader-kills", seed=0)
    assert report.ok, [(v.invariant, v.detail) for v in report.violations]


def test_ids_and_heal_campaigns_refuse_multi_shard_configs():
    scenario = get_scenario("shard-leader-kills")
    with pytest.raises(ValueError, match="shards=1"):
        run_scenario("shard-leader-kills", seed=0,
                     config=scenario.config(seed=0, ids=True))


def test_sharded_campaign_config_builds_the_sharded_deployment():
    config = CampaignConfig(shards=2)
    sharded = config.sharded_config()
    assert sharded.shards == 2
    assert sharded.base.n == config.n
