"""Adaptive adversaries: triggers, the fault budget, and shrinking.

Three properties matter. Triggers must fire deterministically on
observed state (same seed, same firing instant). The fault budget must
hold against adaptivity — an armed trigger is charged its worst case
statically, and the runtime guard refuses to stack a triggered replica
fault on top of ``f`` existing ones. And a failing adaptive schedule
must shrink to a plain fixed-time schedule whenever the adaptivity was
incidental to the violation.
"""

import pytest

from repro.chaos import (
    ChaosBudgetError,
    PREDICATES,
    Schedule,
    SwapByzantine,
    TriggeredAction,
    run_campaign,
)
from repro.chaos.campaign import CampaignConfig
from repro.chaos.scenarios import get_scenario, run_scenario
from repro.chaos.shrink import shrink_schedule


def test_predicate_registry_is_complete():
    assert set(PREDICATES) >= {
        "always", "after", "pipeline-full", "state-transfer-active",
        "ids-warmup-done",
    }


def test_unknown_predicate_is_rejected():
    trigger = TriggeredAction(at=0.5, when="no-such-predicate")
    trigger.reset_runtime()
    with pytest.raises(ValueError, match="no-such-predicate"):
        trigger.should_fire(object())


def test_trigger_charged_statically_to_horizon():
    """An armed replica-fault trigger occupies budget from arm time to
    the horizon — the worst case — regardless of its predicate."""
    trigger = TriggeredAction(
        at=2.0, when="pipeline-full",
        action=SwapByzantine(index=1, behaviour="lying", duration=1.0),
    )
    assert trigger.replica_fault
    assert trigger.fault_interval(horizon=10.0) == (2.0, 10.0, 1)
    # Two such triggers overlap no matter when they would fire.
    schedule = Schedule([
        trigger,
        TriggeredAction(
            at=3.0, when="always",
            action=SwapByzantine(index=2, behaviour="silent", duration=1.0),
        ),
    ])
    with pytest.raises(ChaosBudgetError):
        schedule.validate_budget(f=1, horizon=10.0)


def test_overbudget_scenario_rejected_without_overload():
    scenario = get_scenario("adaptive-overbudget-swap")
    with pytest.raises(ChaosBudgetError):
        scenario.schedule().validate_budget(f=1, horizon=8.0)


def test_overbudget_scenario_caught_by_monitors_when_forced():
    """Forced past the static check, the doubled compromise must be the
    monitors' problem — and they do catch it."""
    report = run_scenario("adaptive-overbudget-swap", seed=0)
    assert not report.ok
    assert len(report.trigger_fires) == 2
    invariants = {v.invariant for v in report.violations}
    assert invariants  # safety/liveness monitors fired


def test_warmup_trigger_fires_after_warmup():
    report = run_scenario("adaptive-warmup-swap", seed=0)
    assert report.ok, report.violations
    assert len(report.trigger_fires) == 1
    fire = report.trigger_fires[0]
    assert fire["when"] == "ids-warmup-done"
    assert fire["time"] >= 1.0  # never inside the warm-up window


def test_state_transfer_trigger_waits_for_transfer():
    report = run_scenario("adaptive-transfer-leader-kill", seed=0)
    fires = [f for f in report.trigger_fires
             if f["when"] == "state-transfer-active"]
    assert len(fires) == 1
    # The isolation heals at t=1.8; the rejoin transfer is what arms it.
    assert fires[0]["time"] >= 1.8


def test_window_partition_trigger_fires():
    report = run_scenario("adaptive-window-partition", seed=0)
    assert [f["when"] for f in report.trigger_fires] == ["pipeline-full"]


def test_trigger_firing_is_deterministic():
    a = run_scenario("adaptive-warmup-swap", seed=5)
    b = run_scenario("adaptive-warmup-swap", seed=5)
    assert a.trigger_fires == b.trigger_fires
    assert a.fingerprint() == b.fingerprint()


def test_runtime_guard_blocks_stacked_replica_fault():
    """A trigger that becomes ready while f replicas are already faulty
    must hold its fire instead of blowing the budget at runtime. A
    repeating trigger is charged once statically, so only the runtime
    guard separates its own firings."""
    schedule = Schedule([
        TriggeredAction(
            at=1.0, when="always", max_fires=2,
            action=SwapByzantine(index=2, behaviour="lying", duration=1.0),
        ),
    ])
    schedule.validate_budget(f=1, horizon=8.0)  # passes statically
    report = run_campaign(schedule, CampaignConfig(seed=3))
    fires = report.trigger_fires
    assert len(fires) == 2
    # The second firing waits out the first compromise's revert instead
    # of stacking a second simultaneous replica fault.
    assert fires[1]["time"] >= fires[0]["revert_at"]


def test_shrinker_deadapts_failing_triggers():
    """The over-budget adaptive failure shrinks to plain fixed-time
    swaps pinned at the observed firing instants."""
    scenario = get_scenario("adaptive-overbudget-swap")
    config = scenario.config(None, seed=0)
    result = shrink_schedule(scenario.schedule(), config)
    assert not result.report.ok
    assert all(not isinstance(a, TriggeredAction)
               for a in result.schedule)
    assert all(isinstance(a, SwapByzantine) for a in result.schedule)
    assert "TriggeredAction" not in result.snippet
    assert "run_campaign" in result.snippet
