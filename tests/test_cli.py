"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_demo_command_succeeds(capsys):
    assert main(["demo", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "HMI temperature : 95" in out
    assert "replica states identical across n=4: True" in out


def test_steps_command_prints_both_flows(capsys):
    assert main(["steps"]) == 0
    out = capsys.readouterr().out
    assert "update flow through neoscada (2 network hops)" in out
    assert "update flow through smartscada" in out
    assert "write flow through smartscada" in out
    assert "Propose" in out


def test_fig8_command_fast_window(capsys):
    assert main(["fig8", "--duration", "0.4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 8 — full reproduction" in out
    assert "8(c) synchronous writes" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-command"])


def test_chaos_list_shows_library(capsys):
    assert main(["chaos", "--list"]) == 0
    out = capsys.readouterr().out
    assert "drop-write-value" in out
    assert "overbudget-falsify" in out
    assert "violation" in out


def test_chaos_single_scenario_run(capsys):
    assert main(["chaos", "leader-crash", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "chaos campaign: leader-crash" in out
    assert "expectation: pass — as expected" in out


def test_chaos_seed_sweep(capsys):
    assert main(["chaos", "drop-write-value", "--seeds", "2"]) == 0
    out = capsys.readouterr().out
    # One row per seed, all passing.
    assert out.count("PASS") == 2


def test_chaos_requires_scenario_name(capsys):
    assert main(["chaos"]) == 2


def test_chaos_json_verdicts(capsys):
    import json

    assert main(["chaos", "leader-crash", "--seed", "3", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"] == "leader-crash"
    assert payload["expectation"] == "pass"
    assert payload["as_expected"] is True
    (campaign,) = payload["campaigns"]
    assert campaign["seed"] == 3
    assert campaign["ok"] is True
    assert campaign["violations"] == []
    assert campaign["fingerprint"]


def test_chaos_json_reports_recoveries(capsys):
    import json

    assert main(["chaos", "crash-restart-intact", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    (campaign,) = payload["campaigns"]
    assert campaign["restarts"] == 1
    (event,) = campaign["recoveries"]
    assert event["disk"] == "intact"
    assert event["settled_at"] is not None


def test_chaos_json_list(capsys):
    import json

    assert main(["chaos", "--list", "--json"]) == 0
    scenarios = json.loads(capsys.readouterr().out)
    names = {s["name"] for s in scenarios}
    assert {"leader-crash", "crash-restart-torn", "overbudget-falsify"} <= names
