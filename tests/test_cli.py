"""Smoke tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_demo_command_succeeds(capsys):
    assert main(["demo", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "HMI temperature : 95" in out
    assert "replica states identical across n=4: True" in out


def test_steps_command_prints_both_flows(capsys):
    assert main(["steps"]) == 0
    out = capsys.readouterr().out
    assert "update flow through neoscada (2 network hops)" in out
    assert "update flow through smartscada" in out
    assert "write flow through smartscada" in out
    assert "Propose" in out


def test_fig8_command_fast_window(capsys):
    assert main(["fig8", "--duration", "0.4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 8 — full reproduction" in out
    assert "8(c) synchronous writes" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-command"])


def test_chaos_list_shows_library(capsys):
    assert main(["chaos", "--list"]) == 0
    out = capsys.readouterr().out
    assert "drop-write-value" in out
    assert "overbudget-falsify" in out
    assert "violation" in out


def test_chaos_single_scenario_run(capsys):
    assert main(["chaos", "leader-crash", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "chaos campaign: leader-crash" in out
    assert "expectation: pass — as expected" in out


def test_chaos_seed_sweep(capsys):
    assert main(["chaos", "drop-write-value", "--seeds", "2"]) == 0
    out = capsys.readouterr().out
    # One row per seed, all passing.
    assert out.count("PASS") == 2


def test_chaos_requires_scenario_name(capsys):
    assert main(["chaos"]) == 2


def test_shards_command_routes_and_converges(capsys):
    assert main(["shards", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "shard map (hash-partitioned, 2 groups)" in out
    assert "valve write     : success=True" in out
    assert "global AE merge" in out
    assert "shard 0         : n=4 states identical: True" in out
    assert "shard 1         : n=4 states identical: True" in out


def test_shards_command_live_split(capsys):
    assert main(["shards", "--shards", "2", "--split"]) == 0
    out = capsys.readouterr().out
    assert "split           : status=completed" in out
    assert "moved_items=2" in out
    # The target group grew by one replica and still converged.
    assert "n=5 states identical: True" in out


def test_chaos_json_verdicts(capsys):
    import json

    assert main(["chaos", "leader-crash", "--seed", "3", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"] == "leader-crash"
    assert payload["expectation"] == "pass"
    assert payload["as_expected"] is True
    (campaign,) = payload["campaigns"]
    assert campaign["seed"] == 3
    assert campaign["ok"] is True
    assert campaign["violations"] == []
    assert campaign["fingerprint"]


def test_chaos_json_reports_recoveries(capsys):
    import json

    assert main(["chaos", "crash-restart-intact", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    (campaign,) = payload["campaigns"]
    assert campaign["restarts"] == 1
    (event,) = campaign["recoveries"]
    assert event["disk"] == "intact"
    assert event["settled_at"] is not None


def test_chaos_json_list(capsys):
    import json

    assert main(["chaos", "--list", "--json"]) == 0
    scenarios = json.loads(capsys.readouterr().out)
    names = {s["name"] for s in scenarios}
    assert {"leader-crash", "crash-restart-torn", "overbudget-falsify"} <= names


def test_trace_command_writes_valid_chrome_trace(tmp_path, capsys):
    import json

    out = tmp_path / "trace.json"
    assert main(
        ["trace", "--duration", "0.3", "--out", str(out), "--seed", "2"]
    ) == 0
    text = capsys.readouterr().out
    assert "wrote" in text and "spans" in text
    assert "request autopsy" in text
    data = json.loads(out.read_text())
    assert isinstance(data["traceEvents"], list) and data["traceEvents"]
    phases = {e["ph"] for e in data["traceEvents"]}
    assert phases <= {"X", "M"} and "X" in phases


def test_trace_command_bft_micro_and_jsonl(tmp_path, capsys):
    import json

    out = tmp_path / "trace.json"
    jsonl = tmp_path / "spans.jsonl"
    assert main(
        [
            "trace", "--workload", "bft-micro", "--duration", "0.2",
            "--out", str(out), "--jsonl", str(jsonl),
        ]
    ) == 0
    lines = jsonl.read_text().splitlines()
    assert lines
    names = {json.loads(line)["name"] for line in lines}
    assert "consensus" in names and "request" in names


def test_trace_command_sharded_workload(tmp_path, capsys):
    import json

    out = tmp_path / "trace.json"
    assert main(
        [
            "trace", "--shards", "2", "--duration", "0.8",
            "--out", str(out), "--seed", "2",
        ]
    ) == 0
    text = capsys.readouterr().out
    assert "wrote" in text and "request autopsy" in text
    data = json.loads(out.read_text())
    # Spans landed on processes of both BFT groups: the trace really
    # crossed the shard tier.
    names = {
        e["args"]["name"]
        for e in data["traceEvents"]
        if e["ph"] == "M" and e.get("name") == "process_name"
    }
    assert any(n.startswith("s0-") for n in names)
    assert any(n.startswith("s1-") for n in names)


def test_fleet_command_json_benign(capsys):
    import json

    assert main(
        ["fleet", "--json", "--duration", "2.0", "--seed", "5"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["shards"] == 2
    assert payload["status"] == "ok"
    assert payload["degraded_seen"] is False
    assert payload["slo"]["violations"] == []
    assert payload["writes"]["total"] > 0
    assert payload["samples"]


def test_fleet_command_kill_leader_degrades_and_recovers(capsys):
    import json

    assert main(
        ["fleet", "--json", "--kill-leader", "--duration", "6.0"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kill"]["target"]
    assert payload["degraded_seen"] is True
    assert payload["recovered"] is True
    burned = {
        v["slo"] for v in payload["slo"]["violations"]
    }
    assert "shard-availability" in burned


def test_fleet_command_live_board_and_html(tmp_path, capsys):
    html = tmp_path / "fleet.html"
    assert main(
        ["fleet", "--duration", "1.0", "--html", str(html)]
    ) == 0
    out = capsys.readouterr().out
    assert "FLEET" in out and "slo-burn" in out
    assert html.exists() and "s0" in html.read_text()


def test_chaos_fleet_flag_reports_scoreboard(capsys):
    import json

    assert main(
        ["chaos", "shard-leader-kills", "--seed", "4", "--json", "--fleet"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    (campaign,) = payload["campaigns"]
    assert campaign["ok"] is True
    assert campaign["fleet"]["shards"] == 2
    assert campaign["slo_violations"]


def test_chaos_trace_dump_on_violation(tmp_path, capsys):
    import json

    dump = tmp_path / "violation.json"
    # overbudget-falsify deliberately fails its expectation, producing
    # invariant violations — exactly the case the dump wiring targets.
    exit_code = main(
        ["chaos", "overbudget-falsify", "--trace-dump", str(dump), "--json"]
    )
    payload = json.loads(capsys.readouterr().out)
    (campaign,) = payload["campaigns"]
    assert campaign["violations"]
    # The falsifier *expects* to fail, so the verdict is as-expected.
    assert exit_code == 0 and payload["as_expected"] is True
    assert dump.exists()
    data = json.loads(dump.read_text())
    assert isinstance(data["traceEvents"], list)
