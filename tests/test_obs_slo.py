"""Unit tests for the SLO burn-rate engine (``repro.obs.slo``).

Driven with synthetic :class:`~repro.obs.fleet.FleetSample` readings so
every budget crossing is exact: the windowed bad fraction, the
hysteresis re-arm, and the latency bucket-delta accounting are all
pinned here without running a deployment.
"""

import pytest

from repro.obs.fleet import FleetSample, ShardHealth
from repro.obs.slo import SloEngine, SloSpec, SloViolation, default_fleet_slos


def health(shard=0, n=4, f=1, live=4):
    return ShardHealth(
        shard=shard,
        n=n,
        f=f,
        quorum=2 * f + 1,
        live=live,
        leader="replica-0",
        leader_changes=0,
        decided=0,
        executed=0,
        pipeline_depth=0,
        pipeline_occupancy=0.0,
    )


def sample(time, shards=(), buckets=None, freshness=0.0):
    return FleetSample(
        time=time,
        shards=list(shards),
        write_latency_buckets=dict(buckets or {}),
        freshness_age=freshness,
    )


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------

def test_spec_rejects_unknown_kind():
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="throughput")


def test_spec_rejects_bad_budget_and_window():
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="latency", budget=0.0)
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="latency", budget=1.5)
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="latency", window=0.0)
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="availability", min_live="most")


def test_engine_rejects_duplicate_names():
    spec = SloSpec(name="dup", kind="freshness", objective=1.0)
    with pytest.raises(ValueError):
        SloEngine(specs=(spec, spec))


def test_default_objectives_cover_all_three_kinds():
    kinds = {spec.kind for spec in default_fleet_slos()}
    assert kinds == {"latency", "availability", "freshness"}


# ----------------------------------------------------------------------
# availability burn + hysteresis
# ----------------------------------------------------------------------

def test_availability_fires_once_per_incident():
    spec = SloSpec(
        name="avail", kind="availability", budget=0.25, window=10.0,
        min_live="full",
    )
    engine = SloEngine(specs=(spec,))
    # Healthy ticks: no burn.
    for t in (0.0, 1.0, 2.0):
        assert engine.evaluate(sample(t, shards=[health(live=4)])) == []
    # One bad tick of four in-window -> bad fraction 0.25, burn 1.0:
    # crosses the threshold exactly once.
    fired = engine.evaluate(sample(3.0, shards=[health(live=3)]))
    assert len(fired) == 1
    violation = fired[0]
    assert isinstance(violation, SloViolation)
    assert violation.slo == "avail" and violation.shard == 0
    assert violation.measured == 3.0
    assert violation.burn_rate == pytest.approx(1.0)
    # The incident continues: burn stays >= 1 but the alert is latched.
    assert engine.evaluate(sample(4.0, shards=[health(live=3)])) == []
    assert engine.burn_rate("avail", shard=0) > 1.0
    assert ("avail", 0) in engine.burning()
    assert len(engine.violations) == 1


def test_availability_rearms_after_recovery():
    spec = SloSpec(
        name="avail", kind="availability", budget=0.25, window=2.0,
        min_live="quorum",
    )
    engine = SloEngine(specs=(spec,))
    engine.evaluate(sample(0.0, shards=[health(live=2)]))  # < quorum of 3
    assert len(engine.violations) == 1
    # Recovery: enough healthy ticks age the bad one out of the window
    # and drop the burn under half the threshold -> re-armed.
    for t in (1.0, 2.0, 3.0, 4.0):
        engine.evaluate(sample(t, shards=[health(live=4)]))
    assert engine.burn_rate("avail", shard=0) == 0.0
    # A second incident fires a second violation.
    fired = engine.evaluate(sample(5.0, shards=[health(live=1)]))
    assert len(fired) == 1
    assert len(engine.violations) == 2


def test_availability_is_per_shard():
    spec = SloSpec(
        name="avail", kind="availability", budget=0.5, window=2.0,
    )
    engine = SloEngine(specs=(spec,))
    fired = engine.evaluate(
        sample(0.0, shards=[health(shard=0, live=4), health(shard=1, live=2)])
    )
    assert [v.shard for v in fired] == [1]
    assert engine.burn_rate("avail", shard=0) == 0.0
    assert engine.burn_rate("avail", shard=1) == 2.0


# ----------------------------------------------------------------------
# latency bucket deltas
# ----------------------------------------------------------------------

def test_latency_counts_cumulative_bucket_deltas():
    spec = SloSpec(
        name="p99", kind="latency", objective=0.1, budget=0.5, window=10.0,
    )
    engine = SloEngine(specs=(spec,))
    # 4 fast writes: all good, no burn.
    engine.evaluate(sample(0.0, buckets={0.01: 2, 0.1: 2, "+inf": 0}))
    assert engine.burn_rate("p99") == 0.0
    # The next reading adds 4 writes above the objective (the +inf
    # delta): 4 bad of 8 total -> bad fraction 0.5, burn 1.0.
    fired = engine.evaluate(sample(1.0, buckets={0.01: 2, 0.1: 2, "+inf": 4}))
    assert len(fired) == 1
    assert fired[0].kind == "latency" and fired[0].shard is None
    assert fired[0].burn_rate == pytest.approx(1.0)


def test_latency_bucket_at_objective_bound_is_good():
    spec = SloSpec(
        name="p99", kind="latency", objective=0.1, budget=0.5, window=10.0,
    )
    engine = SloEngine(specs=(spec,))
    # The 0.1 bucket's bound equals the objective: samples there are
    # within the promise; only buckets strictly above it are bad.
    engine.evaluate(sample(0.0, buckets={0.05: 2, 0.1: 5, "+inf": 0}))
    assert engine.burn_rate("p99") == 0.0


def test_latency_idle_readings_do_not_burn():
    spec = SloSpec(
        name="p99", kind="latency", objective=0.1, budget=0.1, window=10.0,
    )
    engine = SloEngine(specs=(spec,))
    buckets = {0.1: 3, "+inf": 0}
    engine.evaluate(sample(0.0, buckets=buckets))
    # No new writes between readings: deltas are zero, nothing changes.
    for t in (1.0, 2.0, 3.0):
        assert engine.evaluate(sample(t, buckets=buckets)) == []
    assert engine.burn_rate("p99") == 0.0


# ----------------------------------------------------------------------
# freshness
# ----------------------------------------------------------------------

def test_freshness_burns_on_stale_merge_buffer():
    spec = SloSpec(
        name="fresh", kind="freshness", objective=0.5, budget=0.5,
        window=2.0,
    )
    engine = SloEngine(specs=(spec,))
    assert engine.evaluate(sample(0.0, freshness=0.1)) == []
    fired = engine.evaluate(sample(1.0, freshness=0.9))
    assert len(fired) == 1
    assert fired[0].measured == pytest.approx(0.9)


# ----------------------------------------------------------------------
# reading & sinks
# ----------------------------------------------------------------------

def test_sinks_and_summary_report_violations():
    spec = SloSpec(
        name="avail", kind="availability", budget=0.5, window=2.0,
    )
    engine = SloEngine(specs=(spec,))
    seen = []
    engine.subscribe(seen.append)
    engine.evaluate(sample(0.0, shards=[health(live=0)]))
    assert len(seen) == 1 and seen[0] is engine.violations[0]
    summary = engine.summary()
    assert summary["burn"]["avail[s0]"] == 2.0
    assert len(summary["violations"]) == 1
    assert summary["violations"][0]["slo"] == "avail"
    names = [o["name"] for o in summary["objectives"]]
    assert names == ["avail"]


def test_burn_rate_unknown_objective_raises():
    engine = SloEngine()
    with pytest.raises(KeyError):
        engine.burn_rate("no-such-slo")
