"""Tests for the parallel execution extension (§VII-b, Alchieri et al.).

A lane-partitioned service promises that operations in different lanes
commute; the replica executes them concurrently while lane-less
operations act as barriers. Classic behaviour (``execution_lanes=1``)
must be bit-identical to before.
"""

import pytest

from repro.bftsmart import GroupConfig, KeyValueService, build_group, build_proxy
from repro.bftsmart.service import MessageContext
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network
from repro.sim import Simulator
from repro.wire import decode, encode


class LanedKV(KeyValueService):
    """KV store partitioned by key hash; 'sum' conflicts with everything."""

    #: Simulated CPU cost per operation (the thing lanes parallelize).
    OP_COST = 0.001

    def lane_of(self, operation: bytes) -> int | None:
        import zlib

        request = decode(operation)
        if request[0] in ("put", "get", "delete"):
            # Lane functions must be stable across processes (unlike
            # Python's randomized str hash) — all replicas must agree.
            return zlib.crc32(request[1].encode("utf-8"))
        return None  # 'sum' needs the whole store: barrier

    def cost_of(self, operation: bytes) -> float:
        return self.OP_COST

    def execute(self, operation: bytes, ctx: MessageContext) -> bytes:
        request = decode(operation)
        if request[0] == "sum":
            return encode(("ok", sum(v for v in self.data.values())))
        return super().execute(operation, ctx)


def make_world(lanes, seed=1, **config_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.0003))
    keystore = KeyStore()
    config = GroupConfig(
        n=4,
        f=1,
        execution_lanes=lanes,
        checkpoint_interval=config_kwargs.pop("checkpoint_interval", 10),
        **config_kwargs,
    )
    replicas = build_group(sim, net, config, LanedKV, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore, invoke_timeout=5.0)
    return sim, net, replicas, proxy


def put_burst(sim, proxy, count, keys=8):
    def burst():
        events = [
            proxy.invoke_ordered(encode(("put", f"k{i % keys}", i)))
            for i in range(count)
        ]
        yield sim.all_of(events)
        return True

    return sim.run_process(burst(), until=sim.now + 120)


def test_lanes_must_be_positive():
    with pytest.raises(ValueError):
        GroupConfig(execution_lanes=0)


def test_parallel_execution_reaches_same_state_as_serial():
    def final_state(lanes):
        sim, _net, replicas, proxy = make_world(lanes)
        put_burst(sim, proxy, 40)
        sim.run(until=sim.now + 2)
        return [tuple(sorted(r.service.data.items())) for r in replicas]

    serial = final_state(1)
    parallel = final_state(4)
    assert serial == parallel
    assert len(set(serial)) == 1  # replicas agree internally too


def test_parallel_execution_is_faster_for_costly_ops():
    def completion_time(lanes):
        sim, _net, _replicas, proxy = make_world(lanes)
        put_burst(sim, proxy, 60)
        return sim.now

    serial_time = completion_time(1)
    parallel_time = completion_time(8)
    # 60 ops at 1 ms each: serial needs >= 60 ms of execution; 8 lanes
    # over 8 keys cut that drastically.
    assert parallel_time < serial_time * 0.5


def test_barrier_operation_sees_all_prior_writes():
    sim, _net, _replicas, proxy = make_world(lanes=4)

    def scenario():
        events = [
            proxy.invoke_ordered(encode(("put", f"k{i}", i + 1))) for i in range(6)
        ]
        yield sim.all_of(events)
        raw = yield proxy.invoke_ordered(encode(("sum", None)))
        return decode(raw)

    status, total = sim.run_process(scenario(), until=sim.now + 60)
    assert status == "ok"
    assert total == sum(range(1, 7))


def test_checkpoints_quiesce_lanes():
    # batch_max=1 forces one cid per request so checkpoints actually fire.
    sim, _net, replicas, proxy = make_world(lanes=4, batch_max=1, batch_wait=0.0)
    put_burst(sim, proxy, 35)  # crosses checkpoint_interval=10 boundaries
    sim.run(until=sim.now + 2)
    for replica in replicas:
        assert replica.stats["checkpoints"] >= 1
        # The checkpoint snapshot decodes and carries consistent state.
        snapshot, dedup = decode(replica.checkpoint_snapshot)
        assert isinstance(dict(decode(snapshot)), dict)


def test_state_transfer_with_parallel_lanes():
    sim, net, replicas, proxy = make_world(lanes=4)
    net.crash("replica-3")
    put_burst(sim, proxy, 25)
    net.recover("replica-3")
    put_burst(sim, proxy, 10)
    sim.run(until=sim.now + 3)
    states = [tuple(sorted(r.service.data.items())) for r in replicas]
    assert len(set(states)) == 1
    assert replicas[3].state_transfer.completed >= 1


def test_default_service_forces_serial_barriers():
    """A service that never overrides lane_of executes serially even when
    lanes are configured — safety by default."""
    from repro.bftsmart import CounterService

    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.0003))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, execution_lanes=8)
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)

    def burst():
        events = [proxy.invoke_ordered(encode(("add", 1))) for _ in range(20)]
        yield sim.all_of(events)
        return True

    sim.run_process(burst(), until=sim.now + 60)
    sim.run(until=sim.now + 1)
    assert all(r.service.value == 20 for r in replicas)
