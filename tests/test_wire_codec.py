"""Unit tests for the wire codec and type registry."""

import enum
from dataclasses import dataclass

import pytest

from repro.wire import Codec, DecodeError, EncodeError, TypeRegistry

registry = TypeRegistry()
codec = Codec(registry)


@registry.register(900)
@dataclass(frozen=True)
class Point:
    x: int
    y: int


@registry.register(901)
@dataclass(frozen=True)
class Wrapper:
    label: str
    inner: Point
    extras: list


@registry.register(902)
class Color(enum.Enum):
    RED = 1
    BLUE = 2


SCALARS = [
    None,
    True,
    False,
    0,
    1,
    -1,
    2**70,
    -(2**70),
    0.0,
    -2.5,
    1e300,
    "",
    "héllo ✓",
    b"",
    b"\x00\xff" * 10,
]


@pytest.mark.parametrize("value", SCALARS, ids=repr)
def test_scalar_roundtrip(value):
    assert codec.decode(codec.encode(value)) == value


def test_container_roundtrip():
    value = {"a": [1, 2, (3, "x")], 5: None, "nested": {"k": b"v"}}
    assert codec.decode(codec.encode(value)) == value


def test_tuple_and_list_are_distinct():
    assert codec.decode(codec.encode((1, 2))) == (1, 2)
    assert codec.decode(codec.encode([1, 2])) == [1, 2]
    assert isinstance(codec.decode(codec.encode((1, 2))), tuple)


def test_dataclass_roundtrip():
    value = Wrapper(label="w", inner=Point(3, -4), extras=[Point(0, 0), Color.RED])
    assert codec.decode(codec.encode(value)) == value


def test_enum_roundtrip():
    assert codec.decode(codec.encode(Color.BLUE)) is Color.BLUE


def test_encoding_is_canonical():
    a = Wrapper("w", Point(1, 2), [])
    b = Wrapper("w", Point(1, 2), [])
    assert codec.encode(a) == codec.encode(b)


def test_unregistered_dataclass_rejected():
    @dataclass
    class NotRegistered:
        x: int

    with pytest.raises(EncodeError):
        codec.encode(NotRegistered(1))


def test_unencodable_type_rejected():
    with pytest.raises(EncodeError):
        codec.encode(object())


def test_trailing_bytes_rejected():
    data = codec.encode(5) + b"\x00"
    with pytest.raises(DecodeError):
        codec.decode(data)


def test_truncated_input_rejected():
    data = codec.encode("hello world")
    for cut in range(1, len(data)):
        with pytest.raises(DecodeError):
            codec.decode(data[:cut])


def test_unknown_tag_rejected():
    with pytest.raises(DecodeError):
        codec.decode(b"\xfe")


def test_unknown_type_id_rejected():
    # Hand-craft a dataclass frame with a bogus type id.
    with pytest.raises(DecodeError):
        codec.decode(bytes([0x0A, 0x7F, 0x00]))


def test_invalid_enum_value_rejected():
    # Color frame with value 99.
    frame = bytearray(codec.encode(Color.RED))
    bad = codec.encode(99)
    # _ENUM tag + varint(902) is 3 bytes; swap payload.
    with pytest.raises(DecodeError):
        codec.decode(bytes(frame[:3]) + bad)


def test_duplicate_type_id_rejected():
    reg = TypeRegistry()

    @reg.register(1)
    @dataclass
    class A:
        x: int

    with pytest.raises(ValueError):

        @reg.register(1)
        @dataclass
        class B:
            x: int


def test_non_dataclass_registration_rejected():
    reg = TypeRegistry()
    with pytest.raises(TypeError):
        reg.register(1)(int)


def test_field_count_mismatch_rejected():
    # Encode a Point, then doctor the field count.
    data = bytearray(codec.encode(Point(1, 2)))
    # Layout: tag, varint type id (2 bytes for 900), field count, ...
    assert data[0] == 0x0A
    data[3] = 3  # claim three fields
    with pytest.raises(DecodeError):
        codec.decode(bytes(data))


def test_large_collection_roundtrip():
    value = list(range(5000))
    assert codec.decode(codec.encode(value)) == value


def test_deeply_nested_roundtrip():
    value = [1]
    for _ in range(50):
        value = [value]
    assert codec.decode(codec.encode(value)) == value


# -- default-tail backward compatibility -------------------------------------
#
# A schema may grow by appending fields with defaults (e.g. ClientRequest
# gained ``trace_id``); old frames encoded before the addition must still
# decode, with the defaults filled in.


def test_trace_id_roundtrip_on_client_request():
    from repro.bftsmart.messages import ClientRequest

    plain = ClientRequest(
        client_id="c1", sequence=7, operation=b"op", reply_to="c1"
    )
    stamped = ClientRequest(
        client_id="c1", sequence=7, operation=b"op", reply_to="c1",
        trace_id="op:31",
    )
    from repro.wire import decode, encode

    assert decode(encode(plain)) == plain
    assert decode(encode(stamped)) == stamped
    assert decode(encode(plain)).trace_id == ""


def test_old_frame_decodes_with_default_tail():
    # Simulate a schema upgrade: V1 lacks the trailing defaulted field.
    old_reg = TypeRegistry()
    old_codec = Codec(old_reg)

    @old_reg.register(950)
    @dataclass(frozen=True)
    class Record:  # noqa: F811 — the name is the wire identity
        a: int
        b: str

    OldRecord = old_reg.type_of(950)

    new_reg = TypeRegistry()
    new_codec = Codec(new_reg)

    @new_reg.register(950)
    @dataclass(frozen=True)
    class Record:  # noqa: F811
        a: int
        b: str
        tag: str = "unset"

    decoded = new_codec.decode(old_codec.encode(OldRecord(a=1, b="x")))
    assert decoded == Record(a=1, b="x", tag="unset")


def test_old_frame_without_default_for_missing_field_rejected():
    old_reg = TypeRegistry()
    old_codec = Codec(old_reg)

    @old_reg.register(951)
    @dataclass(frozen=True)
    class Pair:  # noqa: F811
        a: int

    OldPair = old_reg.type_of(951)

    new_reg = TypeRegistry()
    new_codec = Codec(new_reg)

    @new_reg.register(951)
    @dataclass(frozen=True)
    class Pair:  # noqa: F811
        a: int
        b: int  # no default: an old frame cannot satisfy it

    frame = old_codec.encode(OldPair(a=5))
    with pytest.raises(DecodeError):
        new_codec.decode(frame)


def test_excess_field_count_still_rejected():
    # Growing is only allowed via trailing defaults; a frame claiming MORE
    # fields than the local schema has is still malformed.
    data = bytearray(codec.encode(Point(1, 2)))
    data[3] = 5
    with pytest.raises(DecodeError):
        codec.decode(bytes(data))
