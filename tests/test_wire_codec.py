"""Unit tests for the wire codec and type registry."""

import enum
from dataclasses import dataclass

import pytest

from repro.wire import Codec, DecodeError, EncodeError, TypeRegistry

registry = TypeRegistry()
codec = Codec(registry)


@registry.register(900)
@dataclass(frozen=True)
class Point:
    x: int
    y: int


@registry.register(901)
@dataclass(frozen=True)
class Wrapper:
    label: str
    inner: Point
    extras: list


@registry.register(902)
class Color(enum.Enum):
    RED = 1
    BLUE = 2


SCALARS = [
    None,
    True,
    False,
    0,
    1,
    -1,
    2**70,
    -(2**70),
    0.0,
    -2.5,
    1e300,
    "",
    "héllo ✓",
    b"",
    b"\x00\xff" * 10,
]


@pytest.mark.parametrize("value", SCALARS, ids=repr)
def test_scalar_roundtrip(value):
    assert codec.decode(codec.encode(value)) == value


def test_container_roundtrip():
    value = {"a": [1, 2, (3, "x")], 5: None, "nested": {"k": b"v"}}
    assert codec.decode(codec.encode(value)) == value


def test_tuple_and_list_are_distinct():
    assert codec.decode(codec.encode((1, 2))) == (1, 2)
    assert codec.decode(codec.encode([1, 2])) == [1, 2]
    assert isinstance(codec.decode(codec.encode((1, 2))), tuple)


def test_dataclass_roundtrip():
    value = Wrapper(label="w", inner=Point(3, -4), extras=[Point(0, 0), Color.RED])
    assert codec.decode(codec.encode(value)) == value


def test_enum_roundtrip():
    assert codec.decode(codec.encode(Color.BLUE)) is Color.BLUE


def test_encoding_is_canonical():
    a = Wrapper("w", Point(1, 2), [])
    b = Wrapper("w", Point(1, 2), [])
    assert codec.encode(a) == codec.encode(b)


def test_unregistered_dataclass_rejected():
    @dataclass
    class NotRegistered:
        x: int

    with pytest.raises(EncodeError):
        codec.encode(NotRegistered(1))


def test_unencodable_type_rejected():
    with pytest.raises(EncodeError):
        codec.encode(object())


def test_trailing_bytes_rejected():
    data = codec.encode(5) + b"\x00"
    with pytest.raises(DecodeError):
        codec.decode(data)


def test_truncated_input_rejected():
    data = codec.encode("hello world")
    for cut in range(1, len(data)):
        with pytest.raises(DecodeError):
            codec.decode(data[:cut])


def test_unknown_tag_rejected():
    with pytest.raises(DecodeError):
        codec.decode(b"\xfe")


def test_unknown_type_id_rejected():
    # Hand-craft a dataclass frame with a bogus type id.
    with pytest.raises(DecodeError):
        codec.decode(bytes([0x0A, 0x7F, 0x00]))


def test_invalid_enum_value_rejected():
    # Color frame with value 99.
    frame = bytearray(codec.encode(Color.RED))
    bad = codec.encode(99)
    # _ENUM tag + varint(902) is 3 bytes; swap payload.
    with pytest.raises(DecodeError):
        codec.decode(bytes(frame[:3]) + bad)


def test_duplicate_type_id_rejected():
    reg = TypeRegistry()

    @reg.register(1)
    @dataclass
    class A:
        x: int

    with pytest.raises(ValueError):

        @reg.register(1)
        @dataclass
        class B:
            x: int


def test_non_dataclass_registration_rejected():
    reg = TypeRegistry()
    with pytest.raises(TypeError):
        reg.register(1)(int)


def test_field_count_mismatch_rejected():
    # Encode a Point, then doctor the field count.
    data = bytearray(codec.encode(Point(1, 2)))
    # Layout: tag, varint type id (2 bytes for 900), field count, ...
    assert data[0] == 0x0A
    data[3] = 3  # claim three fields
    with pytest.raises(DecodeError):
        codec.decode(bytes(data))


def test_large_collection_roundtrip():
    value = list(range(5000))
    assert codec.decode(codec.encode(value)) == value


def test_deeply_nested_roundtrip():
    value = [1]
    for _ in range(50):
        value = [value]
    assert codec.decode(codec.encode(value)) == value
