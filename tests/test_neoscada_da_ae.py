"""Unit tests for the DA and AE interfaces (servers, clients, subscriptions)."""

from repro.neoscada import DataValue, EventRecord, Severity
from repro.neoscada.ae.client import AEClient
from repro.neoscada.ae.server import AEServer
from repro.neoscada.da.client import DAClient
from repro.neoscada.da.server import DAServer
from repro.neoscada.da.subscription import SubscriptionManager
from repro.neoscada.messages import (
    BrowseReply,
    BrowseRequest,
    ItemUpdate,
    Subscribe,
    SubscribeEvents,
    Unsubscribe,
    WriteResult,
    WriteValue,
)


class FakeTransport:
    """Collects (dst, message) pairs and can loop them back."""

    def __init__(self):
        self.sent = []

    def __call__(self, dst, message):
        self.sent.append((dst, message))

    def of_kind(self, cls):
        return [(dst, m) for dst, m in self.sent if isinstance(m, cls)]


# -- SubscriptionManager -----------------------------------------------------


def test_subscription_exact_and_wildcard():
    subs = SubscriptionManager()
    subs.subscribe("a", "item-1")
    subs.subscribe("b", "*")
    assert subs.subscribers_for("item-1") == ["a", "b"]
    assert subs.subscribers_for("other") == ["b"]


def test_subscription_unsubscribe():
    subs = SubscriptionManager()
    subs.subscribe("a", "item-1")
    subs.unsubscribe("a", "item-1")
    assert subs.subscribers_for("item-1") == []
    subs.unsubscribe("a", "never-there")  # no-op


def test_subscription_drop_subscriber():
    subs = SubscriptionManager()
    subs.subscribe("a", "x")
    subs.subscribe("a", "*")
    subs.subscribe("b", "x")
    subs.drop_subscriber("a")
    assert subs.subscribers_for("x") == ["b"]


def test_subscribers_are_sorted_deterministically():
    subs = SubscriptionManager()
    for name in ("zeta", "alpha", "mid"):
        subs.subscribe(name, "i")
    assert subs.subscribers_for("i") == ["alpha", "mid", "zeta"]


# -- DAServer -------------------------------------------------------------------


def test_da_server_subscribe_and_publish():
    transport = FakeTransport()
    server = DAServer(transport)
    assert server.dispatch(Subscribe(subscriber="hmi", item_id="*"), "hmi")
    count = server.publish("item-1", DataValue(5))
    assert count == 1
    assert transport.sent == [("hmi", ItemUpdate(item_id="item-1", value=DataValue(5)))]


def test_da_server_publish_exclude():
    transport = FakeTransport()
    server = DAServer(transport)
    server.dispatch(Subscribe(subscriber="a", item_id="i"), "a")
    server.dispatch(Subscribe(subscriber="b", item_id="i"), "b")
    assert server.publish("i", DataValue(1), exclude="a") == 1
    assert transport.sent[0][0] == "b"


def test_da_server_unsubscribe_stops_updates():
    transport = FakeTransport()
    server = DAServer(transport)
    server.dispatch(Subscribe(subscriber="a", item_id="i"), "a")
    server.dispatch(Unsubscribe(subscriber="a", item_id="i"), "a")
    assert server.publish("i", DataValue(1)) == 0


def test_da_server_routes_writes_to_owner():
    transport = FakeTransport()
    writes = []
    server = DAServer(transport, on_write=lambda m, src: writes.append((m, src)))
    message = WriteValue(item_id="i", value=1, op_id="op", reply_to="hmi")
    assert server.dispatch(message, "hmi")
    assert writes == [(message, "hmi")]


def test_da_server_browse():
    transport = FakeTransport()
    server = DAServer(transport, browse_source=lambda: [("i", True)])
    server.dispatch(BrowseRequest(reply_to="hmi"), "hmi")
    assert transport.sent == [("hmi", BrowseReply(items=(("i", True),)))]


def test_da_server_ignores_foreign_messages():
    server = DAServer(FakeTransport())
    assert not server.dispatch("not-a-da-message", "x")


def test_da_server_on_subscribe_hook():
    transport = FakeTransport()
    seen = []
    server = DAServer(transport, on_subscribe=lambda sub, item: seen.append((sub, item)))
    server.dispatch(Subscribe(subscriber="a", item_id="*"), "a")
    assert seen == [("a", "*")]


# -- DAClient ----------------------------------------------------------------------


def test_da_client_subscribe_sends_message():
    transport = FakeTransport()
    client = DAClient("me", transport)
    client.subscribe("server", "item")
    assert transport.sent == [("server", Subscribe(subscriber="me", item_id="item"))]


def test_da_client_update_callback():
    seen = []
    client = DAClient("me", FakeTransport(), on_update=lambda m, src: seen.append(m))
    update = ItemUpdate(item_id="i", value=DataValue(2))
    assert client.dispatch(update, "server")
    assert seen == [update]
    assert client.updates_received == 1


def test_da_client_write_result_correlation():
    transport = FakeTransport()
    client = DAClient("me", transport)
    results = []
    op = client.write("server", "i", 5, results.append, operator="alice")
    sent_dst, sent_msg = transport.sent[0]
    assert sent_dst == "server"
    assert sent_msg.op_id == op
    assert sent_msg.operator == "alice"
    assert client.pending_write_count() == 1
    result = WriteResult(item_id="i", op_id=op, success=True)
    assert client.dispatch(result, "server")
    assert results == [result]
    assert client.pending_write_count() == 0


def test_da_client_unknown_write_result_ignored():
    client = DAClient("me", FakeTransport())
    assert client.dispatch(WriteResult(item_id="i", op_id="ghost", success=True), "s")


def test_da_client_op_ids_unique():
    client = DAClient("me", FakeTransport())
    ops = {client.next_op_id() for _ in range(100)}
    assert len(ops) == 100


# -- AE -------------------------------------------------------------------------------


def make_event(item="i"):
    return EventRecord(
        event_id="e1",
        item_id=item,
        event_type="alarm",
        severity=Severity.ALARM,
        value=1,
        message="m",
        timestamp=0.0,
    )


def test_ae_server_publish_to_matching_subscribers():
    transport = FakeTransport()
    server = AEServer(transport)
    server.dispatch(SubscribeEvents(subscriber="hmi", item_id="i"), "hmi")
    server.dispatch(SubscribeEvents(subscriber="other", item_id="different"), "other")
    assert server.publish(make_event("i")) == 1
    assert transport.sent[0][0] == "hmi"


def test_ae_client_event_callback():
    seen = []
    client = AEClient("me", FakeTransport(), on_event=lambda e, src: seen.append(e))
    from repro.neoscada.messages import EventUpdate

    event = make_event()
    assert client.dispatch(EventUpdate(event=event), "server")
    assert seen == [event]
    assert client.events_received == 1


def test_ae_client_subscribe_message():
    transport = FakeTransport()
    AEClient("me", transport).subscribe("server", "*")
    assert transport.sent == [("server", SubscribeEvents(subscriber="me", item_id="*"))]
