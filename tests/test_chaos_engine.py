"""Unit tests for the chaos engine: schedules, budgets, sampler,
partition helpers, client backoff and the Byzantine swap machinery."""

import pytest

from repro.bftsmart.byzantine import SilentReplica
from repro.bftsmart.replica import ServiceReplica
from repro.chaos import (
    ChaosBudgetError,
    CrashReplica,
    DropKind,
    Rejuvenate,
    Schedule,
    SwapByzantine,
    sample_schedule,
    swap_replica_behaviour,
)
from repro.core import SmartScadaConfig, build_smartscada
from repro.net import ConstantLatency, Network, NetworkTrace
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# schedules and budgets
# ---------------------------------------------------------------------------

def test_budget_rejects_overlapping_replica_faults():
    schedule = Schedule([
        CrashReplica(at=1.0, duration=3.0, index=0),
        SwapByzantine(at=2.0, duration=3.0, index=1, behaviour="silent"),
    ])
    assert schedule.max_simultaneous_replica_faults(10.0) == 2
    with pytest.raises(ChaosBudgetError):
        schedule.validate_budget(f=1, horizon=10.0)
    # Explicit overload opt-in lifts the check.
    schedule.validate_budget(f=1, horizon=10.0, allow_overload=True)


def test_budget_allows_sequential_faults():
    schedule = Schedule([
        CrashReplica(at=1.0, duration=1.0, index=0),
        CrashReplica(at=2.0, duration=1.0, index=1),  # starts as #0 heals
        Rejuvenate(at=4.0, index=2),
    ])
    assert schedule.max_simultaneous_replica_faults(10.0) == 1
    schedule.validate_budget(f=1, horizon=10.0)


def test_network_faults_are_outside_the_budget():
    # BFT safety must hold under arbitrary network behaviour: pile on.
    schedule = Schedule([
        DropKind(at=0.0, duration=5.0, kind="WriteValue"),
        DropKind(at=0.0, duration=5.0, kind="WriteResult"),
        CrashReplica(at=1.0, duration=1.0, index=0),
    ])
    assert schedule.max_simultaneous_replica_faults(10.0) == 1


def test_open_ended_fault_charges_to_horizon():
    schedule = Schedule([CrashReplica(at=1.0, index=0)])  # no duration
    action = schedule.actions[0]
    assert action.end(6.0) == 6.0
    assert action.fault_interval(6.0) == (1.0, 6.0, 1)


def test_schedule_sorts_actions_by_time():
    schedule = Schedule([
        CrashReplica(at=3.0, duration=1.0, index=1),
        CrashReplica(at=1.0, duration=1.0, index=0),
    ])
    assert [a.at for a in schedule] == [1.0, 3.0]


# ---------------------------------------------------------------------------
# the seeded sampler
# ---------------------------------------------------------------------------

def test_sampler_is_deterministic_per_seed():
    a = sample_schedule(123)
    b = sample_schedule(123)
    assert [repr(x) for x in a] == [repr(x) for x in b]
    c = sample_schedule(124)
    assert [repr(x) for x in a] != [repr(x) for x in c]


def test_sampled_schedules_respect_the_budget():
    for seed in range(30):
        schedule = sample_schedule(seed, horizon=6.0, f=1)
        assert schedule.max_simultaneous_replica_faults(6.0) <= 1
        assert 1 <= len(schedule) <= 5


# ---------------------------------------------------------------------------
# partition/heal helpers and injector counters
# ---------------------------------------------------------------------------

def _net():
    sim = Simulator(seed=5)
    net = Network(sim, latency=ConstantLatency(0.001), trace=NetworkTrace(enabled=False))
    return sim, net


def test_partition_helper_blocks_cross_group_traffic():
    sim, net = _net()
    seen = []
    for name in ("a", "b", "c"):
        net.endpoint(name).set_handler(
            lambda payload, src, name=name: seen.append((name, payload))
        )
    rule = net.faults.partition([["a"], ["b", "c"]])
    net.endpoint("a").send("b", "cross")   # dropped
    net.endpoint("b").send("c", "inside")  # same group: delivered
    sim.run()
    assert seen == [("c", "inside")]
    assert net.faults.stats()["partitions_active"] == 1

    healed = net.faults.heal(rule)
    assert healed == 1
    net.endpoint("a").send("b", "after-heal")
    sim.run()
    assert ("b", "after-heal") in seen
    assert net.faults.stats()["partitions_active"] == 0


def test_heal_without_argument_lifts_all_partitions():
    sim, net = _net()
    net.endpoint("a"), net.endpoint("b"), net.endpoint("c")
    net.faults.partition([["a"], ["b"]])
    net.faults.partition([["b"], ["c"]])
    assert net.faults.heal() == 2
    assert net.faults.rules == []


def test_injector_counters_reach_simulator_stats():
    sim, net = _net()
    net.endpoint("a")
    net.endpoint("b").set_handler(lambda payload, src: None)
    from repro.net import Drop

    net.faults.add(Drop(kind="str"))
    net.endpoint("a").send("b", "dropped")
    net.endpoint("a").send("b", 42)  # int: passes
    sim.run()
    stats = sim.stats()["net.faults"]
    assert stats["total_fired"] == 1
    assert stats["fired"] == {"Drop": 1}
    assert stats["rules_active"] == 1


# ---------------------------------------------------------------------------
# client retransmission backoff
# ---------------------------------------------------------------------------

def test_backoff_grows_and_caps():
    sim = Simulator(seed=9)
    system = build_smartscada(sim, config=SmartScadaConfig())
    proxy = system.proxy_hmi.bft
    t = proxy.invoke_timeout
    delays = [proxy._retransmission_delay(attempts) for attempts in range(1, 8)]
    # Exponential growth with a deterministic jitter in [1.0, 1.1).
    assert t * 1.0 <= delays[0] <= t * 1.1
    assert t * 2.0 <= delays[1] <= t * 2.2
    assert t * 4.0 <= delays[2] <= t * 4.4
    # Capped at 4x from the third retransmission on.
    for delay in delays[3:]:
        assert t * 4.0 <= delay <= t * 4.4


def test_backoff_jitter_is_seed_deterministic():
    def sample(seed):
        sim = Simulator(seed=seed)
        system = build_smartscada(sim, config=SmartScadaConfig())
        proxy = system.proxy_hmi.bft
        return [proxy._retransmission_delay(a) for a in range(1, 6)]

    assert sample(11) == sample(11)
    assert sample(11) != sample(12)


# ---------------------------------------------------------------------------
# runtime Byzantine swap
# ---------------------------------------------------------------------------

def test_swap_replica_behaviour_roundtrip():
    sim = Simulator(seed=21)
    system = build_smartscada(sim, config=SmartScadaConfig())
    system.frontend.add_item("sensor", initial=0)
    system.start()

    swapped = swap_replica_behaviour(system, 2, "silent")
    assert isinstance(swapped.replica, SilentReplica)
    assert system.proxy_masters[2] is swapped

    back = swap_replica_behaviour(system, 2, "honest")
    assert type(back.replica) is ServiceReplica
    # The group keeps deciding with the restored replica.
    for i in range(5):
        system.frontend.inject_update("sensor", i)
        sim.run(until=sim.now + 0.05)
    sim.run(until=sim.now + 2.0)
    live = [pm.replica for pm in system.proxy_masters if pm.replica.active]
    assert len({r.last_decided for r in live}) == 1


def test_swap_rejects_unknown_behaviour():
    sim = Simulator(seed=22)
    system = build_smartscada(sim, config=SmartScadaConfig())
    with pytest.raises(ValueError, match="unknown behaviour"):
        swap_replica_behaviour(system, 0, "gaslighting")
