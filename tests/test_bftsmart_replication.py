"""Integration tests: the full replication stack on the simulated network."""

import pytest

from repro.bftsmart import (
    Administrator,
    CounterService,
    EchoService,
    EquivocatingLeader,
    GroupConfig,
    KeyValueService,
    LyingReplica,
    ServiceReplica,
    SilentReplica,
    StutteringReplica,
    View,
    build_group,
    build_proxy,
)
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Drop, Network
from repro.sim import Simulator
from repro.wire import decode, encode


def make_world(seed=1, n=4, f=1, **config_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.0003))
    keystore = KeyStore()
    config = GroupConfig(
        n=n,
        f=f,
        request_timeout=config_kwargs.pop("request_timeout", 0.5),
        sync_timeout=config_kwargs.pop("sync_timeout", 1.0),
        **config_kwargs,
    )
    return sim, net, keystore, config


def run_adds(sim, proxy, count, amount=1):
    def client():
        result = None
        for _ in range(count):
            raw = yield proxy.invoke_ordered(encode(("add", amount)))
            result = decode(raw)
        return result

    return sim.run_process(client(), until=sim.now + 120)


def test_ordered_requests_reach_all_replicas():
    sim, net, keystore, config = make_world()
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    assert run_adds(sim, proxy, 10) == 10
    assert [r.service.value for r in replicas] == [10, 10, 10, 10]


def test_replies_need_f_plus_1_matching():
    sim, net, keystore, config = make_world()
    build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    run_adds(sim, proxy, 1)
    # At least f+1 replicas answered identically (vote satisfied).
    assert proxy.stats["invocations"] == 1
    assert proxy.stats["failures"] == 0


def test_unordered_read_skips_consensus():
    sim, net, keystore, config = make_world()
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    run_adds(sim, proxy, 3)
    decided_before = replicas[0].stats["decided"]

    def reader():
        raw = yield proxy.invoke_unordered(encode(("get", None)))
        return decode(raw)

    assert sim.run_process(reader(), until=sim.now + 60) == 3
    assert replicas[0].stats["decided"] == decided_before


def test_batching_packs_concurrent_requests():
    sim, net, keystore, config = make_world(batch_max=100, batch_wait=0.005)
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)

    def burst():
        events = [proxy.invoke_ordered(encode(("add", 1))) for _ in range(50)]
        results = yield sim.all_of(events)
        return results

    sim.run_process(burst(), until=sim.now + 60)
    # 50 requests decided in far fewer consensus instances than 50.
    assert replicas[0].stats["decided"] < 10
    assert all(r.service.value == 50 for r in replicas)


def test_crashed_leader_is_replaced_and_service_continues():
    sim, net, keystore, config = make_world()
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    net.crash("replica-0")
    assert run_adds(sim, proxy, 5) == 5
    live = [r for r in replicas if r.address != "replica-0"]
    assert all(r.synchronizer.regency >= 1 for r in live)
    assert all(r.service.value == 5 for r in live)


def test_two_successive_leader_crashes():
    sim, net, keystore, config = make_world()
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    net.crash("replica-0")
    assert run_adds(sim, proxy, 3) == 3
    # Now the regency-1 leader (replica-1) crashes too; f=1 means the
    # group cannot tolerate two *simultaneous* faults, so bring 0 back.
    net.recover("replica-0")
    net.crash("replica-1")
    assert run_adds(sim, proxy, 3) == 6


def test_silent_replica_does_not_block_progress():
    sim, net, keystore, config = make_world()
    replicas = build_group(
        sim, net, config, CounterService, keystore, replica_classes={1: SilentReplica}
    )
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    assert run_adds(sim, proxy, 10) == 10
    honest = [r for r in replicas if not isinstance(r, SilentReplica)]
    assert all(r.service.value == 10 for r in honest)


def test_lying_replica_is_outvoted():
    sim, net, keystore, config = make_world()
    build_group(
        sim, net, config, CounterService, keystore, replica_classes={2: LyingReplica}
    )
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    # Results are still the honest ones, every time.
    assert run_adds(sim, proxy, 10) == 10


def test_equivocating_leader_is_deposed():
    sim, net, keystore, config = make_world()
    replicas = build_group(
        sim,
        net,
        config,
        CounterService,
        keystore,
        replica_classes={0: EquivocatingLeader},
    )
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    assert run_adds(sim, proxy, 5) == 5
    honest = replicas[1:]
    assert all(r.synchronizer.regency >= 1 for r in honest)


def test_stuttering_replica_starves_nobody():
    sim, net, keystore, config = make_world()
    build_group(
        sim,
        net,
        config,
        CounterService,
        keystore,
        replica_classes={3: StutteringReplica},
    )
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    assert run_adds(sim, proxy, 5) == 5


def test_forged_request_signature_rejected():
    sim, net, keystore, config = make_world()
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    # Mallory has a different deployment secret.
    mallory_ks = KeyStore(b"mallory")
    mallory = build_proxy(sim, net, "mallory", config, mallory_ks)
    event = mallory.invoke_ordered(encode(("add", 1_000_000)))
    event.defused = True
    sim.run(until=2.0)
    assert all(r.service.value == 0 for r in replicas)
    # MAC failures happen at channel open; forged *requests* are counted
    # when the channel key matches but the signature does not.
    assert all(
        r.channel.rejected > 0 or r.stats["rejected_requests"] > 0 for r in replicas
    )
    event2 = proxy.invoke_ordered(encode(("add", 1)))
    sim.run(until=5.0)
    assert decode(event2.value) == 1


def test_client_retransmission_survives_message_loss():
    sim, net, keystore, config = make_world()
    build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore, invoke_timeout=0.2)
    # Lose the first copy of every client request to every replica once.
    net.faults.add(Drop(kind="ClientRequest", max_count=4))
    assert run_adds(sim, proxy, 3) == 3
    assert proxy.stats["retransmissions"] >= 1


def test_retransmission_reuses_memoized_encoding():
    """Re-sending a request must hit the encode memo, not re-serialize.

    The proxy keeps the signed :class:`ClientRequest` object for the
    lifetime of the invocation, so every retransmission re-seals the same
    object — the per-object encode memo turns those into cache hits
    (the historical global LRU evicted them first: 0 hits per run).
    """
    from repro.perf import PERF, clear_hot_path_caches

    sim, net, keystore, config = make_world()
    build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore, invoke_timeout=0.2)
    net.faults.add(Drop(kind="ClientRequest", max_count=4))
    clear_hot_path_caches()
    stats = PERF.stats["codec_encode"]
    assert run_adds(sim, proxy, 3) == 3
    assert proxy.stats["retransmissions"] >= 1
    assert stats.hits > 0
    total = stats.hits + stats.misses
    assert stats.hits / total > 0.0  # the cache is no longer dead


def test_duplicate_requests_execute_once():
    sim, net, keystore, config = make_world()
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore, invoke_timeout=0.05)
    # Slow quorum formation forces retransmissions; the counter must not
    # double-count.
    assert run_adds(sim, proxy, 5) == 5
    sim.run(until=sim.now + 2)
    assert all(r.service.value == 5 for r in replicas)


def test_state_transfer_catches_up_crashed_replica():
    sim, net, keystore, config = make_world(checkpoint_interval=10)
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    net.crash("replica-3")
    run_adds(sim, proxy, 25)
    net.recover("replica-3")
    run_adds(sim, proxy, 5)
    sim.run(until=sim.now + 3)
    assert [r.service.value for r in replicas] == [30, 30, 30, 30]
    assert replicas[3].state_transfer.completed >= 1


def test_kv_service_replicates_dictionary_state():
    sim, net, keystore, config = make_world()
    replicas = build_group(sim, net, config, KeyValueService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)

    def client():
        yield proxy.invoke_ordered(encode(("put", "voltage", 230)))
        yield proxy.invoke_ordered(encode(("put", "current", 10)))
        yield proxy.invoke_ordered(encode(("delete", "current")))
        raw = yield proxy.invoke_ordered(encode(("get", "voltage")))
        return decode(raw)

    assert sim.run_process(client(), until=sim.now + 60) == ("ok", 230)
    assert all(r.service.data == {"voltage": 230} for r in replicas)


def test_replicas_reject_bad_operations_deterministically():
    sim, net, keystore, config = make_world()
    replicas = build_group(sim, net, config, KeyValueService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)

    def client():
        raw = yield proxy.invoke_ordered(encode(("explode", 1)))
        return decode(raw)

    status, message = sim.run_process(client(), until=sim.now + 60)
    assert status == "error"
    assert "explode" in message
    assert all(r.stats["executed"] == 1 for r in replicas)


def test_push_messages_delivered_after_f_plus_1_votes():
    class PushingService(EchoService):
        def execute(self, operation, ctx):
            self.push("client-1", "alerts", ctx.order_key, b"alarm:" + operation)
            return super().execute(operation, ctx)

    sim, net, keystore, config = make_world()
    build_group(sim, net, config, PushingService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    received = []
    proxy.pushes.set_handler("alerts", lambda order, payload: received.append((order, payload)))

    def client():
        yield proxy.invoke_ordered(b"overvoltage")
        yield proxy.invoke_ordered(b"overheat")

    sim.run_process(client(), until=sim.now + 60)
    sim.run(until=sim.now + 1)
    assert [payload for _order, payload in received] == [
        b"alarm:overvoltage",
        b"alarm:overheat",
    ]
    # Exactly once despite 4 replicas pushing 4 copies.
    assert proxy.pushes.delivered_count == 2


def test_push_voting_rejects_minority_forgery():
    class PushingService(EchoService):
        def execute(self, operation, ctx):
            self.push("client-1", "alerts", ctx.order_key, b"genuine")
            return super().execute(operation, ctx)

    class ForgingReplica(ServiceReplica):
        def push(self, client_id, stream, order, payload):
            super().push(client_id, stream, order, b"forged")

    sim, net, keystore, config = make_world()
    build_group(
        sim, net, config, PushingService, keystore, replica_classes={0: ForgingReplica}
    )
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    received = []
    proxy.pushes.set_handler("alerts", lambda order, payload: received.append(payload))

    def client():
        yield proxy.invoke_ordered(b"x")

    sim.run_process(client(), until=sim.now + 60)
    sim.run(until=sim.now + 1)
    assert received == [b"genuine"]


def test_reconfiguration_add_and_remove_replica():
    sim, net, keystore, config = make_world()
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "admin-client", config, keystore)
    admin = Administrator(proxy, keystore)

    def scenario():
        for _ in range(3):
            yield proxy.invoke_ordered(encode(("add", 1)))
        event = admin.reconfigure(join=("replica-4",), leave=("replica-1",))
        new_view = View(1, ("replica-0", "replica-2", "replica-3", "replica-4"), 1)
        joiner = ServiceReplica(
            sim, net, "replica-4", config, CounterService(), keystore, view=new_view
        )
        replicas.append(joiner)
        raw = yield event
        assert decode(raw) == ("ok", 1)
        result = None
        for _ in range(5):
            raw = yield proxy.invoke_ordered(encode(("add", 1)))
            result = decode(raw)
        return result

    assert sim.run_process(scenario(), until=sim.now + 60) == 8
    sim.run(until=sim.now + 3)
    removed = replicas[1]
    joiner = replicas[-1]
    assert not removed.active
    assert joiner.active
    assert joiner.service.value == 8
    assert all(r.view.view_id == 1 for r in replicas if r.active)


def test_unauthorized_reconfiguration_rejected():
    sim, net, keystore, config = make_world()
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "evil-client", config, keystore)
    # The attacker signs with its own identity rather than "admin".
    from repro.bftsmart import RECONFIG_MARKER, ReconfigRequest
    from repro.crypto import Signer

    payload = encode(("evil-client", (), ("replica-0",), 1))
    forged = ReconfigRequest(
        admin="evil-client",
        join=(),
        leave=("replica-0",),
        new_f=1,
        signature=Signer("evil-client", keystore).sign(payload).tag,
    )

    def attack():
        raw = yield proxy.invoke_ordered(RECONFIG_MARKER + encode(forged))
        return decode(raw)

    status, _reason = sim.run_process(attack(), until=sim.now + 60)
    assert status == "error"
    assert all(r.view.view_id == 0 for r in replicas)
    assert all(r.active for r in replicas)


def test_checkpoints_truncate_decision_log():
    sim, net, keystore, config = make_world(checkpoint_interval=5, batch_wait=0.0)
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore)
    run_adds(sim, proxy, 17)
    sim.run(until=sim.now + 1)
    for replica in replicas:
        assert replica.stats["checkpoints"] >= 2
        assert all(cid > replica.checkpoint_cid for cid, _v, _t in replica.decision_log)


def test_deterministic_replay_same_seed():
    def run(seed):
        sim, net, keystore, config = make_world(seed=seed)
        replicas = build_group(sim, net, config, CounterService, keystore)
        proxy = build_proxy(sim, net, "client-1", config, keystore)
        run_adds(sim, proxy, 10)
        return (sim.now, [r.stats["decided"] for r in replicas])

    assert run(5) == run(5)
