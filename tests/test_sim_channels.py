"""Unit tests for FIFO channels."""

import pytest

from repro.sim import Channel, ChannelClosed, Simulator


def test_put_then_get_unbounded():
    sim = Simulator()
    ch = Channel(sim)

    def producer():
        yield ch.put("x")
        yield ch.put("y")

    def consumer():
        a = yield ch.get()
        b = yield ch.get()
        return [a, b]

    sim.process(producer())
    proc = sim.process(consumer())
    sim.run()
    assert proc.value == ["x", "y"]


def test_get_blocks_until_put():
    sim = Simulator()
    ch = Channel(sim)

    def consumer():
        item = yield ch.get()
        return (sim.now, item)

    def producer():
        yield sim.timeout(3.0)
        yield ch.put("late")

    proc = sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert proc.value == (3.0, "late")


def test_fifo_ordering_of_items():
    sim = Simulator()
    ch = Channel(sim)
    for i in range(10):
        ch.put(i)
    got = []

    def consumer():
        for _ in range(10):
            item = yield ch.get()
            got.append(item)

    sim.process(consumer())
    sim.run()
    assert got == list(range(10))


def test_multiple_getters_served_in_order():
    sim = Simulator()
    ch = Channel(sim)
    results = {}

    def consumer(name):
        item = yield ch.get()
        results[name] = item

    sim.process(consumer("first"))
    sim.process(consumer("second"))
    sim.run()
    ch.put("a")
    ch.put("b")
    sim.run()
    assert results == {"first": "a", "second": "b"}


def test_bounded_put_blocks_until_space():
    sim = Simulator()
    ch = Channel(sim, capacity=1)
    times = []

    def producer():
        yield ch.put(1)
        times.append(sim.now)
        yield ch.put(2)
        times.append(sim.now)

    def consumer():
        yield sim.timeout(5.0)
        yield ch.get()

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert times == [0.0, 5.0]


def test_try_put_respects_capacity():
    sim = Simulator()
    ch = Channel(sim, capacity=2)
    assert ch.try_put(1)
    assert ch.try_put(2)
    assert not ch.try_put(3)
    assert len(ch) == 2


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, capacity=0)


def test_close_fails_blocked_getter():
    sim = Simulator()
    ch = Channel(sim)

    def consumer():
        try:
            yield ch.get()
        except ChannelClosed:
            return "closed"
        return "got-item"

    proc = sim.process(consumer())
    sim.call_later(1.0, ch.close)
    sim.run()
    assert proc.value == "closed"


def test_close_delivers_buffered_items_first():
    sim = Simulator()
    ch = Channel(sim)
    ch.put("remaining")
    ch.close()

    def consumer():
        item = yield ch.get()
        return item

    proc = sim.process(consumer())
    sim.run()
    assert proc.value == "remaining"


def test_put_after_close_fails():
    sim = Simulator()
    ch = Channel(sim)
    ch.close()
    event = ch.put("x")
    assert event.triggered and not event.ok
    event.defused = True
    assert not ch.try_put("y")


def test_cancelled_get_does_not_consume_item():
    sim = Simulator()
    ch = Channel(sim)

    def racer():
        # Race a get against a short timeout; the timeout wins.
        winner = yield sim.any_of([ch.get(), sim.timeout(1.0, "timeout")])
        return winner

    proc = sim.process(racer())
    sim.run()
    assert proc.value == (1, "timeout")
    # The cancelled get must not swallow this item.
    ch.put("item")
    got = []

    def consumer():
        item = yield ch.get()
        got.append(item)

    sim.process(consumer())
    sim.run()
    assert got == ["item"]


def test_get_with_timeout_winning_get():
    sim = Simulator()
    ch = Channel(sim)
    ch.put("present")

    def racer():
        winner = yield sim.any_of([ch.get(), sim.timeout(1.0, "timeout")])
        return winner

    proc = sim.process(racer())
    sim.run()
    assert proc.value == (0, "present")
