"""Error-path and interpolation tests for the workload measurement helpers."""

import math

import pytest

from repro.sim import Simulator
from repro.workloads.metrics import LatencyRecorder, ThroughputMeter


# -- ThroughputMeter error paths ---------------------------------------------


def _meter(counter=lambda: 0):
    return ThroughputMeter(Simulator(), counter)


def test_close_before_open_raises():
    meter = _meter()
    with pytest.raises(RuntimeError, match="close_window\\(\\) before open_window"):
        meter.close_window()


def test_count_before_any_window_raises():
    meter = _meter()
    with pytest.raises(RuntimeError, match="not opened/closed"):
        meter.count


def test_duration_before_any_window_raises():
    meter = _meter()
    with pytest.raises(RuntimeError, match="not opened/closed"):
        meter.duration


def test_count_after_open_but_before_close_raises():
    meter = _meter()
    meter.open_window()
    with pytest.raises(RuntimeError):
        meter.count


def test_meter_rate_over_window():
    box = {"n": 0}
    sim = Simulator()
    meter = ThroughputMeter(sim, lambda: box["n"])

    def drive():
        meter.open_window()
        yield sim.timeout(2.0)
        box["n"] = 50
        meter.close_window()

    sim.run_process(drive())
    assert meter.count == 50
    assert meter.duration == 2.0
    assert meter.rate == 25.0


def test_meter_zero_duration_rate_is_zero():
    meter = _meter()
    meter.open_window()
    meter.close_window()
    assert meter.rate == 0.0


# -- LatencyRecorder error paths ---------------------------------------------


def test_percentile_on_empty_recorder_raises():
    recorder = LatencyRecorder()
    with pytest.raises(RuntimeError, match="no latency samples"):
        recorder.percentile(50)


def test_percentile_bounds_checked_before_emptiness():
    # The argument check fires even on an empty recorder.
    recorder = LatencyRecorder()
    with pytest.raises(ValueError, match="within \\[0, 100\\]"):
        recorder.percentile(-1)


def test_p50_stays_nan_on_empty_recorder():
    recorder = LatencyRecorder()
    assert math.isnan(recorder.p50)
    assert math.isnan(recorder.p99)
    assert math.isnan(recorder.mean)


def test_negative_latency_rejected():
    recorder = LatencyRecorder()
    with pytest.raises(ValueError):
        recorder.record(-0.001)
    assert len(recorder) == 0


# -- percentile interpolation ------------------------------------------------


def test_percentile_linear_interpolation():
    recorder = LatencyRecorder()
    for value in (1.0, 2.0, 3.0, 4.0):
        recorder.record(value)
    # rank = p/100 * (n-1); p50 over 4 samples sits halfway between 2 and 3.
    assert recorder.percentile(0) == 1.0
    assert recorder.percentile(50) == pytest.approx(2.5)
    assert recorder.percentile(25) == pytest.approx(1.75)
    assert recorder.percentile(100) == 4.0


def test_percentile_unsorted_input_is_sorted_first():
    recorder = LatencyRecorder()
    for value in (4.0, 1.0, 3.0, 2.0):
        recorder.record(value)
    assert recorder.percentile(50) == pytest.approx(2.5)


def test_percentile_single_sample_is_constant():
    recorder = LatencyRecorder()
    recorder.record(0.125)
    for p in (0, 33, 50, 99, 100):
        assert recorder.percentile(p) == 0.125


def test_p99_interpolates_near_max():
    recorder = LatencyRecorder()
    for value in range(1, 101):  # 1..100
        recorder.record(float(value))
    # rank = 0.99 * 99 = 98.01 -> between samples 99 and 100.
    assert recorder.percentile(99) == pytest.approx(99.01)
    assert recorder.p99 == pytest.approx(99.01)


def test_summary_shape():
    recorder = LatencyRecorder()
    recorder.record(0.010)
    recorder.record(0.020)
    summary = recorder.summary()
    assert summary["count"] == 2
    assert summary["mean"] == pytest.approx(0.015)
    assert summary["p50"] == pytest.approx(0.015)
    assert summary["max"] == 0.020
