"""Wire round-trips for every SCADA and field-protocol message type."""

import pytest

from repro.neoscada import DataValue, EventRecord, Quality, Severity
from repro.neoscada.messages import (
    BrowseReply,
    BrowseRequest,
    EventQuery,
    EventQueryReply,
    EventUpdate,
    ItemUpdate,
    Subscribe,
    SubscribeEvents,
    Unsubscribe,
    UnsubscribeEvents,
    WriteResult,
    WriteValue,
)
from repro.neoscada.protocols.iec104 import (
    Command,
    CommandConfirm,
    GeneralInterrogation,
    InterrogationReply,
    SpontaneousUpdate,
    StartDataTransfer,
)
from repro.neoscada.protocols.modbus import (
    ExceptionReply,
    ReadRegisters,
    ReadReply,
    WriteRegister,
    WriteReply,
)
from repro.wire import decode, encode

EVENT = EventRecord(
    event_id="evt-1-0-1",
    item_id="feeder.voltage",
    event_type="alarm",
    severity=Severity.ALARM,
    value=260.5,
    message="above limit",
    timestamp=12.25,
)

SAMPLES = [
    Subscribe(subscriber="hmi", item_id="*"),
    Unsubscribe(subscriber="hmi", item_id="sensor"),
    ItemUpdate(item_id="sensor", value=DataValue(230.5, Quality.GOOD, 1.5)),
    WriteValue(item_id="breaker", value=0, op_id="hmi:op1", reply_to="hmi", operator="op-1"),
    WriteResult(item_id="breaker", op_id="hmi:op1", success=False, reason="denied"),
    BrowseRequest(reply_to="hmi"),
    BrowseReply(items=(("sensor", False), ("breaker", True))),
    SubscribeEvents(subscriber="hmi", item_id="*"),
    UnsubscribeEvents(subscriber="hmi", item_id="*"),
    EventUpdate(event=EVENT),
    EventQuery(query_id="q1", reply_to="hmi", item_id="*", start=0.0, end=10.0,
               event_type="alarm", limit=50),
    EventQueryReply(query_id="q1", events=(EVENT,)),
    ReadRegisters(req_id=1, reply_to="fe", start=0, count=3),
    ReadReply(req_id=1, start=0, values=(1, 2, 3)),
    WriteRegister(req_id=2, reply_to="fe", register=3, value=1),
    WriteReply(req_id=2, register=3, value=1),
    ExceptionReply(req_id=3, code=2),
    StartDataTransfer(reply_to="fe"),
    GeneralInterrogation(req_id=4, reply_to="fe"),
    InterrogationReply(req_id=4, points=((0, 2300, 1.0), (1, 400, 1.0))),
    SpontaneousUpdate(ioa=0, value=2310, timestamp=2.0),
    Command(req_id=5, reply_to="fe", ioa=3, value=0),
    CommandConfirm(req_id=5, ioa=3, ok=True),
]


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_roundtrip(message):
    assert decode(encode(message)) == message


def test_event_query_defaults_include_infinities():
    query = EventQuery(query_id="q", reply_to="x")
    restored = decode(encode(query))
    assert restored.start == float("-inf")
    assert restored.end == float("inf")
    assert restored.limit == 100


def test_quality_and_severity_enums_roundtrip():
    for quality in Quality:
        assert decode(encode(quality)) is quality
    for severity in Severity:
        assert decode(encode(severity)) is severity
