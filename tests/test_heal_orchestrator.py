"""Unit-level tests for the recovery orchestrator (scripted detector).

The campaign-level drills (``tests/test_heal_campaign.py``) prove the
closed loop end to end; these tests script the detector so each policy
mechanism is pinned in isolation: the corroboration threshold, the full
escalation ladder, quorum-guard refusal with the blocked-streak alarm,
and the liveness-probe restart path.
"""

from repro.core import SmartScadaConfig, build_smartscada
from repro.heal import HealConfig, RecoveryOrchestrator
from repro.ids.detectors import Detection, Verdict
from repro.neoscada import HandlerChain, Monitor
from repro.sim import Simulator


class ScriptedDetector:
    """A stand-in detector whose verdict stream the test controls."""

    def __init__(self) -> None:
        self.streaks: dict = {}  # (kind, entity) -> streak count

    def assert_condition(self, kind: str, entity: str, uid: str = "d1") -> None:
        self.streaks[(kind, entity, uid)] = (
            self.streaks.get((kind, entity, uid), 0) + 1
        )

    def clear(self) -> None:
        self.streaks = {}

    def verdicts(self, min_streak: int = 1, kinds=None):
        out = []
        for (kind, entity, uid), streak in sorted(self.streaks.items()):
            if streak < min_streak:
                continue
            if kinds is not None and kind not in kinds:
                continue
            out.append(
                Verdict(
                    detection=Detection(
                        time=0.0,
                        kind=kind,
                        entity=entity,
                        score=2.0,
                        detector="scripted",
                        uid=uid,
                    ),
                    streak=streak,
                    peak_score=2.0,
                )
            )
        return out


def build(seed=51, durability=False, heal_config=None):
    sim = Simulator(seed=seed)
    system = build_smartscada(
        sim, config=SmartScadaConfig(durability=durability)
    )
    system.frontend.add_item("sensor", initial=0)
    system.attach_handlers("sensor", lambda: HandlerChain([Monitor(high=100.0)]))
    system.start()

    def reconfigure(proxy_master):
        proxy_master.attach_handlers("sensor", HandlerChain([Monitor(high=100.0)]))

    detector = ScriptedDetector()
    orchestrator = RecoveryOrchestrator(
        sim,
        system.net,
        system,
        detector=detector,
        config=heal_config or HealConfig(),
        handler_config=reconfigure,
    )
    return sim, system, detector, orchestrator


def drive(sim, orchestrator, seconds, grid=0.1):
    deadline = sim.now + seconds

    def poller():
        while sim.now < deadline:
            orchestrator.poll()
            yield sim.timeout(grid)

    sim.process(poller())
    sim.run(until=deadline)


def traffic(sim, system):
    def feeder():
        value = 0
        while True:
            yield sim.timeout(0.05)
            value += 1
            system.frontend.inject_update("sensor", value % 90)

    sim.process(feeder())


def test_corroboration_threshold_gates_every_action():
    """A verdict below the corroboration streak triggers nothing — one
    noisy detection can never start a recovery action."""
    sim, system, detector, orch = build()
    traffic(sim, system)
    detector.assert_condition("byzantine-stuttering", "replica-2")
    detector.assert_condition("byzantine-stuttering", "replica-2")
    drive(sim, orch, 1.0)  # streak 2 < corroboration_polls 3
    assert orch.actions == []
    detector.assert_condition("byzantine-stuttering", "replica-2")
    drive(sim, orch, 1.0)
    assert [a.kind for a in orch.actions] == ["rejuvenate"]


def test_ladder_escalates_rejuvenate_then_evict():
    """A condition that survives the reimage climbs the default ladder:
    rejuvenate in place first, then evict-and-replace. Once evicted, the
    entity is terminal — further assertions (stale detector state) are
    ignored rather than re-acted on."""
    sim, system, detector, orch = build(
        heal_config=HealConfig(cooldown=0.5)
    )
    traffic(sim, system)

    def keep_asserting():
        while True:
            detector.assert_condition("byzantine-stuttering", "replica-2")
            yield sim.timeout(0.1)

    sim.process(keep_asserting())
    drive(sim, orch, 12.0)
    kinds = [a.kind for a in orch.actions]
    assert kinds == ["rejuvenate", "evict"]
    assert [a.outcome for a in orch.actions] == ["completed", "completed"]
    assert "replica-2" in orch.evicted
    assert orch.evictions == 1
    # After eviction the spare serves in its place and the group is 2f+1.
    addresses = orch.admin.proxy.view.addresses
    assert "replica-2" not in addresses
    assert "replica-4" in addresses


def test_alarm_rung_is_terminal_and_fires_once():
    """Kinds automation cannot fix (client-side injection) go straight
    to a single operator alarm, however long the condition persists."""
    sim, system, detector, orch = build()
    traffic(sim, system)

    def keep_asserting():
        while True:
            detector.assert_condition("write-burst", "hmi-1")
            yield sim.timeout(0.1)

    sim.process(keep_asserting())
    drive(sim, orch, 4.0)
    assert [(a.kind, a.outcome) for a in orch.actions] == [
        ("alarm", "raised"),
    ]
    assert orch.alarms == 1


def test_quorum_guard_blocks_and_escalates_to_alarm():
    """With a replica already down, acting would leave 2 < 2f+1 live —
    every attempt must be refused, then turn into an operator alarm."""
    sim, system, detector, orch = build(
        heal_config=HealConfig(blocked_alarm_after=3)
    )
    traffic(sim, system)
    system.net.crash("replica-3")

    def keep_asserting():
        while True:
            detector.assert_condition("byzantine-lying", "replica-2")
            yield sim.timeout(0.1)

    sim.process(keep_asserting())
    drive(sim, orch, 4.0)
    blocked = [a for a in orch.actions if a.outcome == "blocked"]
    alarms = [a for a in orch.actions if a.outcome == "raised"]
    assert len(blocked) >= 3
    assert all(a.kind == "evict" for a in blocked)
    assert all("2f+1" in a.detail for a in blocked)
    assert len(alarms) == 1
    assert orch.evictions == 0
    assert all(pm.replica.active for pm in system.proxy_masters)


def test_probe_restarts_process_dead_replica():
    """Process dead + machine answering the probe = restart from disk.
    (A crashed *machine* — endpoint down — is left alone.)"""
    sim, system, detector, orch = build(durability=True)
    traffic(sim, system)
    sim.run(until=sim.now + 1.0)
    system.proxy_masters[1].replica.halt()  # process dies, endpoint stays up
    drive(sim, orch, 5.0)
    restarts = [a for a in orch.actions if a.kind == "restart"]
    assert len(restarts) == 1
    assert restarts[0].target == "replica-1"
    assert restarts[0].trigger == "probe"
    assert restarts[0].outcome == "completed"
    assert "durable disk" in restarts[0].detail
    fresh = [pm for pm in system.proxy_masters if pm.index == 1][-1]
    assert fresh.replica.active


def test_machine_down_is_left_to_infrastructure():
    sim, system, detector, orch = build()
    traffic(sim, system)
    system.net.crash("replica-1")
    drive(sim, orch, 3.0)
    assert orch.actions == []
