"""Unit tests for the unified metrics registry (``repro.obs.metrics``)."""

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim import Simulator


def test_counter_increments_and_resets():
    counter = Counter("hits")
    assert counter.value == 0
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    counter.reset()
    assert counter.value == 0


def test_gauge_reads_live_value():
    box = {"n": 1}
    gauge = Gauge("depth", lambda: box["n"])
    assert gauge.read() == 1
    box["n"] = 7
    assert gauge.read() == 7


def test_histogram_observe_and_quantile():
    hist = Histogram("latency", buckets=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.002, 0.003, 0.05, 0.5):
        hist.observe(value)
    summary = hist.summary()
    assert summary["count"] == 5
    assert summary["buckets"][0.001] == 1
    assert summary["buckets"][0.01] == 2
    assert summary["buckets"][0.1] == 1
    assert summary["buckets"]["+inf"] == 1
    assert summary["min"] == 0.0005 and summary["max"] == 0.5
    # Quantiles interpolate linearly inside the target bucket, with the
    # extremes pinned to the observed min/max (never a bucket bound that
    # no sample reached).
    assert hist.quantile(0.0) == 0.0005
    # rank 2.5 of 5 lands in the (0.001, 0.01] bucket, 1.5 of its 2
    # samples deep: 0.001 + 0.009 * 0.75.
    assert hist.quantile(0.5) == pytest.approx(0.00775)
    assert hist.quantile(1.0) == 0.5


def test_histogram_empty_quantile_is_nan():
    import math

    hist = Histogram("empty")
    assert math.isnan(hist.quantile(0.5))
    assert math.isnan(hist.quantile(0.0))
    assert math.isnan(hist.quantile(1.0))


def test_histogram_single_bucket_interpolates_between_min_and_max():
    hist = Histogram("coarse", buckets=(1.0,))
    hist.observe(0.2)
    hist.observe(0.4)
    # Both samples share one bucket; interpolation spans the *observed*
    # range, not (0, 1.0].
    assert hist.quantile(0.0) == 0.2
    assert hist.quantile(0.5) == pytest.approx(0.3)
    assert hist.quantile(1.0) == 0.4


def test_histogram_single_sample_quantiles_collapse():
    hist = Histogram("one", buckets=(0.01, 0.1))
    hist.observe(0.05)
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert hist.quantile(q) == 0.05


def test_registry_counter_get_or_create():
    registry = MetricsRegistry()
    a = registry.counter("requests")
    b = registry.counter("requests")
    assert a is b
    a.inc()
    assert registry.value_of("requests") == 1


def test_registry_snapshot_shapes():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g", lambda: 12)
    registry.histogram("h").observe(0.002)
    registry.group("grp", lambda: {"x": 1})
    snap = registry.snapshot()
    assert snap["c"] == 3
    assert snap["g"] == 12
    assert snap["h"]["count"] == 1
    assert snap["grp"] == {"x": 1}


def test_registry_rejects_cross_kind_name_conflict():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x", lambda: 0)
    with pytest.raises(ValueError):
        registry.histogram("x")


def test_registry_reset_clears_counters_and_histograms():
    registry = MetricsRegistry()
    registry.counter("c").inc(9)
    registry.histogram("h").observe(1.0)
    registry.reset()
    assert registry.value_of("c") == 0
    assert registry.snapshot()["h"]["count"] == 0


def test_registry_contains_and_names():
    registry = MetricsRegistry()
    registry.counter("first")
    registry.gauge("second", lambda: 0)
    assert "first" in registry and "second" in registry
    assert registry.names() == ["first", "second"]


# -- kernel integration ------------------------------------------------------


def test_simulator_stats_backed_by_registry():
    sim = Simulator(seed=1)
    sim.call_later(0.1, lambda: None)
    sim.run()
    stats = sim.stats()
    assert stats["events_dispatched"] == sim.dispatched == 1
    # The registry reads the kernel's own attributes — no duplicated state.
    assert sim.metrics.snapshot()["events_dispatched"] == sim.dispatched


def test_register_stats_source_is_a_registry_group():
    sim = Simulator()
    sim.register_stats_source("custom", lambda: {"a": 1})
    assert sim.stats()["custom"] == {"a": 1}
    # Re-registering replaces the provider (documented contract).
    sim.register_stats_source("custom", lambda: {"a": 2})
    assert sim.stats()["custom"] == {"a": 2}


def test_network_hop_counter_registered(monkeypatch=None):
    from repro.net import ConstantLatency, Network
    from repro.net.trace import NetworkTrace

    sim = Simulator(seed=2)
    net = Network(
        sim, latency=ConstantLatency(0.001), trace=NetworkTrace(enabled=True)
    )
    a = net.endpoint("a")
    net.endpoint("b").set_handler(lambda payload, src: None)
    a.send("b", "hello")
    sim.run()
    assert sim.metrics.value_of("net.trace.hops") == 1
    assert sim.stats()["net"]["trace_hops"] == 1
    assert sim.stats()["net"]["delivered"] == 1
