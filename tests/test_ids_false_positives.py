"""The IDS must stay silent through benign faults.

An intrusion detector that cries wolf during ordinary operational
events — leader crashes, replica restarts, proactive rejuvenation,
transient partitions — would be disabled within a week of deployment.
These tests run the benign end of the drill library with detection
enabled and require *zero* alerts above the threshold, not merely a
favourable ratio. Every scenario here heals on its own and ends with a
passing campaign; any detection at all is a false positive.
"""

from dataclasses import replace as dc_replace

import pytest

from repro.chaos import (
    CrashReplica,
    KillLeader,
    PartitionNet,
    Rejuvenate,
    Schedule,
    run_campaign,
)
from repro.chaos.campaign import CampaignConfig
from repro.chaos.schedule import CrashRestart

SEEDS = (1, 3, 7)

BENIGN = {
    "kill-leader": (
        Schedule([KillLeader(at=1.5, duration=1.5)]),
        {},
    ),
    "crash-recover": (
        Schedule([CrashReplica(at=1.2, index=1, duration=2.0)]),
        {},
    ),
    "crash-restart": (
        Schedule([CrashRestart(at=1.5, index=2, duration=1.0)]),
        {"durability": True},
    ),
    "rejuvenation": (
        Schedule([Rejuvenate(at=2.0, index=2)]),
        {},
    ),
    "partition-split": (
        Schedule([PartitionNet(at=1.5, duration=1.0,
                               groups=((0, 1), (2, 3)))]),
        {},
    ),
}


@pytest.mark.parametrize("name", sorted(BENIGN))
@pytest.mark.parametrize("seed", SEEDS)
def test_benign_fault_produces_no_detections(name, seed):
    schedule, overrides = BENIGN[name]
    config = dc_replace(CampaignConfig(ids=True), seed=seed, **overrides)
    report = run_campaign(schedule, config)

    assert report.ok, report.violations
    assert not report.detections, (
        f"false positives during benign {name!r}: {report.detections}"
    )
    assert report.ids_score["false_positive_count"] == 0
    # No ground truth was planted, so scoring must be vacuous.
    assert report.ids_score["episodes"] == 0


def test_leader_change_storm_stays_clean():
    """Back-to-back leader kills — the worst benign case for the
    equivocation detector, which watches suspicion bursts."""
    schedule = Schedule([
        KillLeader(at=1.5, duration=1.0),
        KillLeader(at=4.0, duration=1.0),
    ])
    report = run_campaign(schedule, CampaignConfig(seed=3, ids=True))
    assert report.ok, report.violations
    assert not report.detections


def test_fingerprint_unchanged_by_ids():
    """Enabling detection must not perturb the simulation itself."""
    schedule = Schedule([KillLeader(at=1.5, duration=1.5)])
    plain = run_campaign(schedule, CampaignConfig(seed=3))
    with_ids = run_campaign(schedule, CampaignConfig(seed=3, ids=True))
    assert plain.fingerprint() == with_ids.fingerprint()
