"""Unit tests for event storage and the storage-station timing model."""

import pytest

from repro.neoscada import EventRecord, EventStorage, Severity
from repro.neoscada.storage import StorageStation


def make_event(i, item="item-1", event_type="alarm", ts=None):
    return EventRecord(
        event_id=f"e{i}",
        item_id=item,
        event_type=event_type,
        severity=Severity.ALARM,
        value=i,
        message=f"event {i}",
        timestamp=float(i) if ts is None else ts,
    )


def test_append_and_len():
    storage = EventStorage()
    for i in range(5):
        storage.append(make_event(i))
    assert len(storage) == 5
    assert storage.total_written == 5


def test_capacity_rotation_keeps_newest():
    storage = EventStorage(capacity=3)
    for i in range(10):
        storage.append(make_event(i))
    assert len(storage) == 3
    assert [e.event_id for e in storage.latest(3)] == ["e7", "e8", "e9"]
    assert storage.total_written == 10


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventStorage(capacity=0)


def test_query_by_item():
    storage = EventStorage()
    storage.append(make_event(1, item="a"))
    storage.append(make_event(2, item="b"))
    assert [e.event_id for e in storage.query(item_id="a")] == ["e1"]
    assert len(storage.query(item_id="*")) == 2


def test_query_by_time_window():
    storage = EventStorage()
    for i in range(10):
        storage.append(make_event(i))
    result = storage.query(start=3.0, end=5.0)
    assert [e.event_id for e in result] == ["e3", "e4", "e5"]


def test_query_by_type_and_limit():
    storage = EventStorage()
    storage.append(make_event(1, event_type="alarm"))
    storage.append(make_event(2, event_type="override"))
    storage.append(make_event(3, event_type="alarm"))
    assert [e.event_id for e in storage.query(event_type="alarm")] == ["e1", "e3"]
    assert len(storage.query(limit=2)) == 2


def test_latest_edge_cases():
    storage = EventStorage()
    assert storage.latest(0) == []
    assert storage.latest(5) == []
    storage.append(make_event(1))
    assert [e.event_id for e in storage.latest(10)] == ["e1"]


def test_restore_roundtrip():
    storage = EventStorage()
    for i in range(4):
        storage.append(make_event(i))
    snapshot = storage.to_tuple()
    other = EventStorage()
    other.restore(list(snapshot), total_written=storage.total_written)
    assert other.to_tuple() == snapshot
    assert other.total_written == 4


# -- StorageStation ---------------------------------------------------------


def test_station_no_stall_below_buffer():
    station = StorageStation(service_time=0.001, buffer_size=10)
    # 5 writes at t=0: backlog 5 < 10 -> no stall.
    assert station.submit(0.0, 5) == 0.0


def test_station_stalls_when_buffer_exceeded():
    station = StorageStation(service_time=0.001, buffer_size=4)
    stall = station.submit(0.0, 10)
    # busy_until = 10ms; headroom 4ms -> producer stalls 6ms.
    assert stall == pytest.approx(0.006)


def test_station_drains_over_time():
    station = StorageStation(service_time=0.001, buffer_size=1)
    station.submit(0.0, 2)  # busy until 2ms
    # Submitting later, after the backlog drained, causes no stall.
    assert station.submit(0.010, 1) == 0.0


def test_station_saturation_throughput_is_service_rate():
    # Submitting 1 event per tick faster than the service rate: the
    # asymptotic stall per event approaches (1/mu - tick).
    station = StorageStation(service_time=0.002, buffer_size=2)
    now = 0.0
    stalls = []
    for _ in range(1000):
        stall = station.submit(now, 1)
        stalls.append(stall)
        now += 0.001 + stall  # producer advances by its own work + stall
    assert sum(stalls[-100:]) / 100 == pytest.approx(0.001, rel=0.05)


def test_station_zero_count_free():
    station = StorageStation(service_time=0.001, buffer_size=1)
    assert station.submit(0.0, 0) == 0.0
    assert station.submitted == 0


def test_station_validation():
    with pytest.raises(ValueError):
        StorageStation(service_time=-1, buffer_size=1)
    with pytest.raises(ValueError):
        StorageStation(service_time=0.001, buffer_size=0)
