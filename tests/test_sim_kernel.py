"""Unit tests for the simulation kernel (events, time, scheduling)."""

import pytest

from repro.sim import Event, SimulationError, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_run_empty_heap_returns_now():
    sim = Simulator()
    assert sim.run() == 0.0


def test_run_until_advances_time_even_without_events():
    sim = Simulator()
    assert sim.run(until=5.0) == 5.0
    assert sim.now == 5.0


def test_call_later_runs_at_the_right_time():
    sim = Simulator()
    seen = []
    sim.call_later(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    seen = []
    sim.call_later(1.0, lambda: sim.call_soon(lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [1.0]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.call_later(delay, order.append, delay)
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_fifo_order():
    sim = Simulator()
    order = []
    for tag in range(5):
        sim.call_later(1.0, order.append, tag)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    seen = []
    sim.call_later(1.0, seen.append, "early")
    sim.call_later(10.0, seen.append, "late")
    sim.run(until=5.0)
    assert seen == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert seen == ["early", "late"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_later(-1.0, lambda: None)


def test_timeout_event_value():
    sim = Simulator()
    timeout = sim.timeout(4.0, value="done")
    sim.run()
    assert timeout.ok
    assert timeout.value == "done"


def test_negative_timeout_rejected():
    # One shared check in the kernel, one exception type (the Timeout
    # constructor used to pre-empt it with a ValueError).
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-0.1)


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)
    with pytest.raises(RuntimeError):
        event.fail(ValueError("x"))


def test_event_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(RuntimeError):
        _ = event.value


def test_fail_requires_exception_instance():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_unhandled_failed_event_raises_at_dispatch():
    sim = Simulator()
    event = sim.event()
    event.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_defused_failed_event_does_not_raise():
    sim = Simulator()
    event = sim.event()
    event.defused = True
    event.fail(ValueError("boom"))
    sim.run()  # no raise


def test_callback_added_after_processing_still_runs():
    sim = Simulator()
    event = sim.event()
    event.succeed("v")
    sim.run()
    seen = []
    event.add_callback(lambda ev: seen.append(ev.value))
    sim.run()
    assert seen == ["v"]


def test_callback_added_after_failure_propagates_exception():
    # A late observer of an already-failed, undefused event must not
    # silently swallow the failure: the callback runs, then the
    # exception propagates exactly as it would have at _dispatch.
    sim = Simulator()
    event = sim.event()
    event.defused = True  # survive the original dispatch
    event.fail(ValueError("boom"))
    sim.run()
    event.defused = False  # late observer arrives with nobody handling it
    seen = []
    event.add_callback(lambda ev: seen.append(ev.exception))
    with pytest.raises(ValueError, match="boom"):
        sim.run()
    assert len(seen) == 1 and isinstance(seen[0], ValueError)


def test_late_callback_can_defuse_failed_event():
    sim = Simulator()
    event = sim.event()
    event.defused = True
    event.fail(ValueError("boom"))
    sim.run()
    event.defused = False

    def handler(ev):
        ev.defused = True  # late observer takes responsibility

    event.add_callback(handler)
    sim.run()  # no raise


def test_late_callback_on_defused_failure_runs_quietly():
    sim = Simulator()
    event = sim.event()
    event.defused = True
    event.fail(ValueError("boom"))
    sim.run()
    seen = []
    event.add_callback(lambda ev: seen.append(ev))
    sim.run()  # stays defused: callback runs, no raise
    assert seen == [event]


def test_any_of_returns_first_winner():
    sim = Simulator()
    race = sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
    sim.run()
    assert race.value == (1, "fast")


def test_all_of_collects_every_value():
    sim = Simulator()
    barrier = sim.all_of([sim.timeout(2.0, "a"), sim.timeout(1.0, "b")])
    sim.run()
    assert barrier.value == ["a", "b"]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    barrier = sim.all_of([])
    assert barrier.triggered
    assert barrier.value == []


def test_all_of_fails_on_first_failure():
    sim = Simulator()
    bad = sim.event()
    bad.fail(RuntimeError("nope"))
    barrier = sim.all_of([sim.timeout(1.0), bad])
    barrier.defused = True  # nobody yields on it in this test
    sim.run(until=2.0)
    assert barrier.triggered and not barrier.ok
    assert isinstance(barrier.exception, RuntimeError)


def test_any_of_requires_events():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.any_of([])


def test_dispatched_counter_increments():
    sim = Simulator()
    sim.call_later(1.0, lambda: None)
    sim.call_later(2.0, lambda: None)
    sim.run()
    assert sim.dispatched >= 2


def test_deterministic_repeat_runs():
    def build_and_run(seed):
        sim = Simulator(seed=seed)
        trace = []
        rng = sim.rng.stream("jitter")

        def tick(i):
            trace.append((round(sim.now, 9), i))
            if i < 20:
                sim.call_later(rng.random(), tick, i + 1)

        sim.call_soon(tick, 0)
        sim.run()
        return trace

    assert build_and_run(7) == build_and_run(7)
    assert build_and_run(7) != build_and_run(8)
