"""Unit tests for digests, MACs and simulated signatures."""

import pytest

from repro.crypto import (
    DIGEST_SIZE,
    MAC_SIZE,
    Authenticator,
    KeyStore,
    Signer,
    Verifier,
    combine,
    digest,
    make_mac_vector,
    sha256,
    verify_mac_vector,
)


def test_digest_is_deterministic_and_truncated():
    assert digest(b"abc") == digest(b"abc")
    assert len(digest(b"abc")) == DIGEST_SIZE
    assert digest(b"abc") != digest(b"abd")


def test_sha256_rejects_non_bytes():
    with pytest.raises(TypeError):
        sha256("string")


def test_combine_is_unambiguous():
    assert combine(b"ab", b"c") != combine(b"a", b"bc")
    assert combine(b"ab", b"c") == combine(b"ab", b"c")


def test_pair_keys_are_symmetric():
    ks = KeyStore()
    assert ks.pair_key("a", "b") == ks.pair_key("b", "a")
    assert ks.pair_key("a", "b") != ks.pair_key("a", "c")


def test_different_root_secret_gives_different_keys():
    assert KeyStore(b"one").pair_key("a", "b") != KeyStore(b"two").pair_key("a", "b")


def test_empty_root_secret_rejected():
    with pytest.raises(ValueError):
        KeyStore(b"")


def test_mac_roundtrip():
    ks = KeyStore()
    alice = Authenticator("alice", ks)
    bob = Authenticator("bob", ks)
    tag = alice.mac("bob", b"payload")
    assert len(tag) == MAC_SIZE
    assert bob.verify("alice", b"payload", tag)
    assert not bob.verify("alice", b"tampered", tag)


def test_mac_from_wrong_keystore_rejected():
    good, bad = KeyStore(b"good"), KeyStore(b"bad")
    mallory = Authenticator("alice", bad)  # impersonation attempt
    bob = Authenticator("bob", good)
    tag = mallory.mac("bob", b"payload")
    assert not bob.verify("alice", b"payload", tag)


def test_mac_vector_verifies_per_receiver():
    ks = KeyStore()
    leader = Authenticator("r0", ks)
    vector = make_mac_vector(leader, ["r1", "r2", "r3"], b"propose")
    for name in ("r1", "r2", "r3"):
        receiver = Authenticator(name, ks)
        assert verify_mac_vector(receiver, vector, b"propose")
        assert not verify_mac_vector(receiver, vector, b"other")


def test_mac_vector_missing_receiver_fails():
    ks = KeyStore()
    leader = Authenticator("r0", ks)
    vector = make_mac_vector(leader, ["r1"], b"propose")
    outsider = Authenticator("r9", ks)
    assert not verify_mac_vector(outsider, vector, b"propose")


def test_signature_roundtrip():
    ks = KeyStore()
    signer = Signer("replica-2", ks)
    verifier = Verifier(ks)
    sig = signer.sign(b"stop-data")
    assert verifier.verify(sig, b"stop-data")
    assert not verifier.verify(sig, b"stop-data!")


def test_signature_binds_signer_identity():
    ks = KeyStore()
    verifier = Verifier(ks)
    sig = Signer("replica-2", ks).sign(b"m")
    forged = type(sig)(signer="replica-3", tag=sig.tag)
    assert not verifier.verify(forged, b"m")


def test_signature_tag_length_enforced():
    from repro.crypto import Signature

    with pytest.raises(ValueError):
        Signature(signer="x", tag=b"short")
