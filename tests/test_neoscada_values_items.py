"""Unit tests for values, items and the item registry."""

import pytest

from repro.neoscada import DataValue, ItemRegistry, Quality
from repro.wire import decode, encode


def test_data_value_defaults_good_quality():
    value = DataValue(42)
    assert value.is_good
    assert value.quality is Quality.GOOD
    assert value.timestamp == 0.0


def test_data_value_rejects_non_scalars():
    with pytest.raises(TypeError):
        DataValue([1, 2, 3])
    with pytest.raises(TypeError):
        DataValue({"a": 1})


def test_data_value_scalar_types_allowed():
    for raw in (1, 2.5, True, "text", None):
        assert DataValue(raw).value == raw


def test_with_value_preserves_quality():
    value = DataValue(1, Quality.UNCERTAIN, 5.0)
    updated = value.with_value(2)
    assert updated.value == 2
    assert updated.quality is Quality.UNCERTAIN
    assert updated.timestamp == 5.0
    stamped = value.with_value(3, timestamp=9.0)
    assert stamped.timestamp == 9.0


def test_with_quality():
    value = DataValue(1).with_quality(Quality.BAD)
    assert not value.is_good


def test_data_value_wire_roundtrip():
    value = DataValue(230.5, Quality.BLOCKED, 1.25)
    assert decode(encode(value)) == value


def test_registry_register_and_get():
    registry = ItemRegistry()
    item = registry.register("pump.speed", initial=1500, writable=True)
    assert item.writable
    assert registry.get("pump.speed").value.value == 1500
    assert "pump.speed" in registry
    assert len(registry) == 1


def test_registry_duplicate_rejected():
    registry = ItemRegistry()
    registry.register("a")
    with pytest.raises(ValueError):
        registry.register("a")


def test_registry_unknown_get_raises():
    registry = ItemRegistry()
    with pytest.raises(KeyError):
        registry.get("ghost")
    assert registry.try_get("ghost") is None


def test_registry_unregistered_item_starts_uncertain():
    registry = ItemRegistry()
    item = registry.register("sensor")
    assert item.value.quality is Quality.UNCERTAIN
    assert item.value.value is None


def test_registry_ensure_creates_mirror():
    registry = ItemRegistry()
    item = registry.ensure("remote.item")
    assert item.item_id == "remote.item"
    assert registry.ensure("remote.item") is item


def test_registry_update():
    registry = ItemRegistry()
    registry.register("s", initial=1)
    registry.update("s", DataValue(2))
    assert registry.get("s").value.value == 2
    with pytest.raises(KeyError):
        registry.update("ghost", DataValue(1))


def test_registry_iteration_order_is_insertion():
    registry = ItemRegistry()
    for name in ("c", "a", "b"):
        registry.register(name)
    assert registry.ids() == ["c", "a", "b"]
