"""Unit tests for generator-based processes."""

import pytest

from repro.sim import Interrupted, Simulator
from repro.sim.kernel import SimulationError


def test_process_returns_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        return 42

    assert sim.run_process(worker()) == 42
    assert sim.now == 1.0


def test_process_receives_event_values():
    sim = Simulator()

    def worker():
        value = yield sim.timeout(1.0, value="tick")
        return value

    assert sim.run_process(worker()) == "tick"


def test_processes_interleave_by_time():
    sim = Simulator()
    trace = []

    def worker(name, period, count):
        for _ in range(count):
            yield sim.timeout(period)
            trace.append((sim.now, name))

    sim.process(worker("a", 1.0, 3))
    sim.process(worker("b", 1.5, 2))
    sim.run()
    # At t=3.0 both fire; b's timeout was scheduled earlier (t=1.5 vs t=2.0)
    # so FIFO tie-breaking runs b first.
    assert trace == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"), (3.0, "a")]


def test_process_exception_propagates_through_process_event():
    sim = Simulator()

    def worker():
        yield sim.timeout(1.0)
        raise ValueError("inside")

    proc = sim.process(worker())
    with pytest.raises(ValueError, match="inside"):
        sim.run()
    assert proc.triggered and not proc.ok


def test_process_can_catch_failed_event():
    sim = Simulator()
    failing = sim.event()

    def worker():
        try:
            yield failing
        except RuntimeError as exc:
            return f"caught:{exc}"
        return "missed"

    proc = sim.process(worker())
    sim.call_later(1.0, lambda: failing.fail(RuntimeError("bad")))
    sim.run()
    assert proc.value == "caught:bad"


def test_waiting_on_another_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        return result

    assert sim.run_process(parent()) == "child-result"
    assert sim.now == 2.0


def test_yield_non_event_fails_process():
    sim = Simulator()

    def worker():
        yield 5

    proc = sim.process(worker())
    with pytest.raises(TypeError):
        sim.run()
    assert not proc.ok


def test_interrupt_wakes_process():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
            return "slept"
        except Interrupted as intr:
            return f"interrupted:{intr.cause}"

    proc = sim.process(sleeper())
    sim.call_later(1.0, proc.interrupt, "wakeup")
    sim.run(until=2.0)
    assert proc.value == "interrupted:wakeup"
    assert sim.now == 2.0


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield sim.timeout(0.5)
        return "done"

    proc = sim.process(quick())
    sim.run()
    proc.interrupt("late")
    sim.run()
    assert proc.value == "done"


def test_stale_wakeup_after_interrupt_is_ignored():
    sim = Simulator()
    trace = []

    def worker():
        try:
            yield sim.timeout(5.0)
            trace.append("timeout-fired")
        except Interrupted:
            trace.append("interrupted")
        # Continue with a different wait: the old timeout must not resume us.
        yield sim.timeout(10.0)
        trace.append("second-wait-done")

    proc = sim.process(worker())
    sim.call_later(1.0, proc.interrupt)
    sim.run()
    assert trace == ["interrupted", "second-wait-done"]
    assert sim.now == 11.0


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_run_process_unfinished_raises():
    sim = Simulator()

    def forever():
        while True:
            yield sim.timeout(1.0)

    with pytest.raises(SimulationError):
        sim.run_process(forever(), until=3.0)


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        sim.run()
        yield sim.timeout(1.0)

    sim.process(nested())
    with pytest.raises(SimulationError):
        sim.run()
