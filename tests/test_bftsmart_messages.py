"""Wire round-trips for every protocol message type."""

import pytest

from repro.bftsmart import (
    AcceptMsg,
    ClientRequest,
    Propose,
    PushMessage,
    ReconfigRequest,
    Reply,
    RequestBatch,
    Sealed,
    StateReply,
    StateRequest,
    Stop,
    StopData,
    Sync,
    View,
    WriteMsg,
)
from repro.bftsmart.messages import TimeoutVote
from repro.wire import decode, encode

SAMPLES = [
    ClientRequest(
        client_id="c1",
        sequence=7,
        operation=b"\x01\x02",
        reply_to="c1",
        unordered=False,
        mac=b"tag",
    ),
    Reply(replica="r0", client_id="c1", sequence=7, result=b"ok", view_id=0, regency=2),
    PushMessage(replica="r0", client_id="c1", stream="scada", order=(3, 0, 1), payload=b"x"),
    Propose(sender="r0", cid=5, epoch=1, value=b"batch", timestamp=2.5),
    WriteMsg(sender="r1", cid=5, epoch=1, value_digest=b"d" * 20),
    AcceptMsg(sender="r2", cid=5, epoch=1, value_digest=b"d" * 20),
    Stop(sender="r3", regency=4),
    StopData(
        sender="r3",
        regency=4,
        last_decided=9,
        in_flight=((10, 1, b"v", 1.0), (11, 1, b"w", 1.2)),
        signature=b"s",
    ),
    StopData(sender="r3", regency=4, last_decided=9, in_flight=(), signature=b"s"),
    Sync(sender="r1", regency=4, proposals=((10, b"v", 1.0), (11, b"", 3.0))),
    Sync(sender="r1", regency=4, proposals=()),
    StateRequest(sender="r3", from_cid=11),
    StateRequest(sender="r3", from_cid=11, log_only=True),
    StateReply(
        sender="r0",
        checkpoint_cid=9,
        snapshot=b"snap",
        log=((10, b"v", 1.0),),
        view=View(0, ("r0", "r1", "r2", "r3"), 1),
    ),
    StateReply(
        sender="r0",
        checkpoint_cid=10,
        snapshot=b"",
        log=((11, b"v", 1.5),),
        view=View(0, ("r0", "r1", "r2", "r3"), 1),
        partial=True,
    ),
    ReconfigRequest(admin="admin", join=("r4",), leave=(), new_f=1, signature=b"sig"),
    TimeoutVote(replica="r2", operation_key=("scada-master:w9",)),
    Sealed(sender="r0", payload=b"inner", tags={"r1": b"t1", "r2": b"t2"}),
]


@pytest.mark.parametrize("message", SAMPLES, ids=lambda m: type(m).__name__)
def test_roundtrip(message):
    assert decode(encode(message)) == message


def test_request_batch_roundtrip_nested():
    batch = RequestBatch(requests=(SAMPLES[0],))
    assert decode(encode(batch)) == batch


def test_encoding_is_canonical_per_message():
    for message in SAMPLES:
        assert encode(message) == encode(decode(encode(message)))
