"""Property: the Adapter-driven Master core is deterministic.

For ANY sequence of SCADA operations, two independent Master replicas
fed the same ordered stream (with the same ContextInfo inputs) must end
in byte-identical snapshots — the property all of §III-B/§IV-C exists to
establish. Hypothesis generates the operation sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bftsmart.service import MessageContext
from repro.core.adapter import ScadaService
from repro.core.context import ContextInfo
from repro.neoscada import DataValue, HandlerChain, Monitor, Scale, ScadaMaster
from repro.neoscada.messages import (
    BrowseReply,
    ItemUpdate,
    Subscribe,
    WriteResult,
    WriteValue,
)
from repro.net import ConstantLatency, Network
from repro.sim import Simulator


class _NullReplica:
    def push(self, client_id, stream, order, payload):
        pass


ITEMS = ("alpha", "beta", "gamma")

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("update"),
            st.sampled_from(ITEMS),
            st.integers(min_value=-50, max_value=400),
        ),
        st.tuples(
            st.just("write"),
            st.sampled_from(ITEMS),
            st.integers(min_value=0, max_value=100),
        ),
        st.tuples(
            st.just("write_result"),
            st.sampled_from(ITEMS),
            st.integers(min_value=1, max_value=5),
        ),
        st.tuples(st.just("subscribe"), st.sampled_from(ITEMS + ("*",)), st.just(0)),
    ),
    max_size=30,
)


def build_service(seed):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.0001))
    master = ScadaMaster(sim, net, "scada-master", frontends=[], workers=0, jitter=0.0)
    context = ContextInfo()
    master.clock = context.now
    master.event_id_source = context.next_event_id
    for item in ITEMS:
        master.attach_handlers(
            item, HandlerChain([Scale(0.5), Monitor(high=100.0)])
        )
    service = ScadaService(master, context)
    service._replica = _NullReplica()
    # Item directory, as the ProxyFrontend's forwarded browse provides.
    service.execute(
        _encode(BrowseReply(items=tuple((i, True) for i in ITEMS))),
        _ctx(0, "proxy-frontend-0-bft"),
    )
    return service


def _encode(message):
    from repro.wire import encode

    return encode(message)


def _ctx(cid, client):
    return MessageContext(
        cid=cid,
        order=0,
        timestamp=cid * 0.25,
        regency=0,
        client_id=client,
        sequence=cid,
        replica="replica-x",
    )


def _to_message(op):
    kind, item, value = op
    if kind == "update":
        return ItemUpdate(item, DataValue(value)), "proxy-frontend-0-bft"
    if kind == "write":
        return (
            WriteValue(item, value, f"op-{item}-{value}", "proxy-hmi-bft", "op-1"),
            "proxy-hmi-bft",
        )
    if kind == "write_result":
        return (
            WriteResult(item, f"scada-master:w{value}", True),
            "proxy-frontend-0-bft",
        )
    return Subscribe(subscriber="proxy-hmi-bft", item_id=item), "proxy-hmi-bft"


@given(operations)
@settings(max_examples=40, deadline=None)
def test_any_operation_sequence_is_deterministic(ops):
    def run(seed):
        service = build_service(seed)
        for cid, op in enumerate(ops, start=1):
            message, client = _to_message(op)
            service.execute(_encode(message), _ctx(cid, client))
        return service.snapshot()

    # Different simulator seeds (i.e. different "machines"), same stream.
    assert run(1) == run(424242)


@given(operations)
@settings(max_examples=20, deadline=None)
def test_snapshot_install_is_lossless_for_any_history(ops):
    service = build_service(1)
    for cid, op in enumerate(ops, start=1):
        message, client = _to_message(op)
        service.execute(_encode(message), _ctx(cid, client))
    snapshot = service.snapshot()
    fresh = build_service(2)
    fresh.install_snapshot(snapshot)
    assert fresh.snapshot() == snapshot
