"""Property tests of state-machine-replication safety under faults.

Hypothesis generates fault schedules (crashes, recoveries, message loss)
and client workloads; after the dust settles, the invariants every SMR
system must keep are checked:

- **Agreement**: all live replicas hold identical service state.
- **Validity**: the final state is exactly the sum of the acknowledged
  operations plus possibly some unacknowledged-but-decided ones — never
  an operation nobody issued, never an acknowledged one missing.
- **Linearity**: the counter equals the number of distinct executed
  requests (no duplication despite retransmissions).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bftsmart import CounterService, GroupConfig, build_group, build_proxy
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Drop, Network
from repro.sim import Simulator
from repro.wire import decode, encode

fault_schedules = st.lists(
    st.tuples(
        st.sampled_from(["crash", "recover", "drop-consensus", "none"]),
        st.integers(min_value=0, max_value=3),  # which replica
        st.floats(min_value=0.1, max_value=1.0),  # delay before the action
    ),
    max_size=4,
)


@given(
    schedule=fault_schedules,
    operations=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=25, deadline=None)
def test_agreement_and_validity_under_faults(schedule, operations, seed):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.0004))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, request_timeout=0.5, sync_timeout=1.0)
    replicas = build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "client-1", config, keystore, invoke_timeout=0.3)

    crashed: set = set()

    def runnable(action, index):
        # Never exceed f=1 *simultaneous* crashes — beyond the model,
        # nothing is promised.
        if action == "crash":
            return len(crashed) == 0
        return True

    def chaos():
        for action, index, delay in schedule:
            yield sim.timeout(delay)
            address = f"replica-{index}"
            if action == "crash" and runnable(action, index):
                crashed.add(address)
                net.crash(address)
            elif action == "recover" and address in crashed:
                crashed.discard(address)
                net.recover(address)
            elif action == "drop-consensus":
                net.faults.add(Drop(src=address, kind="WriteMsg", max_count=5))
        return True

    acknowledged = []

    def client():
        for i in range(operations):
            event = proxy.invoke_ordered(encode(("add", 1)))
            outcome = yield sim.any_of([event, sim.timeout(5.0, "timeout")])
            index, value = outcome
            if index == 0:
                acknowledged.append(decode(value))
        return True

    sim.process(chaos())
    client_proc = sim.process(client())
    sim.run(until=60.0, stop_on=client_proc)
    # Heal everything and let stragglers converge.
    for address in list(crashed):
        net.recover(address)
    net.faults.clear()

    def poke():
        # One final acknowledged operation forces full convergence.
        result = yield proxy.invoke_ordered(encode(("add", 0)))
        return decode(result)

    sim.run_process(poke(), until=sim.now + 30)
    for _ in range(60):
        sim.run(until=sim.now + 0.5)
        if len({r.last_decided for r in replicas}) == 1 and len(
            {r.executed_cid for r in replicas}
        ) == 1:
            break

    values = {r.service.value for r in replicas}
    # Agreement: one state across all replicas.
    assert len(values) == 1, f"replicas diverged: {values}"
    final = values.pop()
    # Validity: every acknowledged op applied; nothing invented.
    assert final >= max(acknowledged, default=0)
    assert final <= operations
    # Linearity: acknowledgements were monotone (no double counting seen
    # by the client).
    assert acknowledged == sorted(acknowledged)
