"""Property tests of the per-instance consensus quorum logic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bftsmart.consensus import Instance
from repro.crypto import digest

REPLICAS = ["r0", "r1", "r2", "r3"]
QUORUM = 3  # n=4, f=1


def apply_votes(instance, votes):
    """Apply (phase, sender, value) vote triples in order."""
    for phase, sender, value in votes:
        if phase == "write":
            instance.add_write(sender, digest(value))
        else:
            instance.add_accept(sender, digest(value))


vote_lists = st.lists(
    st.tuples(
        st.sampled_from(["write", "accept"]),
        st.sampled_from(REPLICAS),
        st.sampled_from([b"good", b"evil"]),
    ),
    max_size=24,
)


@given(vote_lists)
@settings(max_examples=100)
def test_quorum_never_reached_without_enough_distinct_voters(votes):
    instance = Instance(0, 0)
    instance.set_proposal(b"good", 1.0)
    apply_votes(instance, votes)
    # Count distinct senders whose FIRST write vote matched the proposal.
    first_write = {}
    first_accept = {}
    for phase, sender, value in votes:
        table = first_write if phase == "write" else first_accept
        table.setdefault(sender, value)
    good_writers = sum(1 for v in first_write.values() if v == b"good")
    good_accepters = sum(1 for v in first_accept.values() if v == b"good")
    assert instance.has_write_quorum(QUORUM) == (good_writers >= QUORUM)
    assert instance.has_accept_quorum(QUORUM) == (good_accepters >= QUORUM)


@given(vote_lists)
@settings(max_examples=100)
def test_equivocating_votes_never_mix_into_a_quorum(votes):
    """Votes for different values never combine: with at most 2 distinct
    honest voters per value, no quorum of 3 can form."""
    instance = Instance(0, 0)
    instance.set_proposal(b"good", 1.0)
    # Adversarial filter: at most two senders ever say "good".
    filtered = [
        (phase, sender, value)
        for phase, sender, value in votes
        if not (value == b"good" and sender in ("r2", "r3"))
    ]
    apply_votes(instance, filtered)
    assert not instance.has_write_quorum(QUORUM)
    assert not instance.has_accept_quorum(QUORUM)


@given(vote_lists, st.integers(min_value=1, max_value=5))
@settings(max_examples=50)
def test_epoch_advance_erases_all_votes(votes, bump):
    instance = Instance(0, 0)
    instance.set_proposal(b"good", 1.0)
    apply_votes(instance, votes)
    instance.advance_epoch(bump)
    assert instance.writes == {}
    assert instance.accepts == {}
    assert instance.proposal_value is None
    assert not instance.has_write_quorum(1)
