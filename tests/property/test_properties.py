"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import digest
from repro.neoscada import DataValue, EventRecord, EventStorage, Severity
from repro.neoscada.da.subscription import SubscriptionManager
from repro.neoscada.storage import StorageStation
from repro.sim import Channel, Simulator
from repro.wire import decode, encode

# -- wire codec: decode(encode(x)) == x for all encodable values -------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**100), max_value=2**100),
    st.floats(allow_nan=False),
    st.text(max_size=50),
    st.binary(max_size=50),
)


def containers(children):
    return st.one_of(
        st.lists(children, max_size=6),
        st.lists(children, max_size=6).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=6),
    )


values = st.recursive(scalars, containers, max_leaves=25)


@given(values)
def test_codec_roundtrip(value):
    assert decode(encode(value)) == value


@given(values)
def test_codec_canonical_equal_values_equal_bytes(a):
    # A structurally identical copy must serialize to identical bytes.
    # (Plain `==` comparison would be too weak a premise: Python says
    # [False] == [0], but the codec rightly preserves the type.)
    import copy

    assert encode(a) == encode(copy.deepcopy(a))


@given(st.binary(max_size=200), st.binary(max_size=200))
def test_digest_injective_on_samples(a, b):
    if a != b:
        assert digest(a) != digest(b)
    else:
        assert digest(a) == digest(b)


# -- simulator: event ordering is by (time, FIFO) ------------------------------


@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=30))
def test_sim_dispatch_order_is_sorted_by_time(delays):
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delays):
        sim.call_later(delay, fired.append, (delay, index))
    sim.run()
    assert fired == sorted(fired, key=lambda pair: pair[0])
    # FIFO among equal times: indexes of equal-delay entries stay sorted.
    for delay in set(delays):
        indexes = [i for d, i in fired if d == delay]
        assert indexes == sorted(indexes)


@given(
    st.lists(st.integers(), min_size=1, max_size=50),
    st.integers(min_value=1, max_value=5),
)
def test_channel_is_fifo_regardless_of_capacity(items, capacity):
    sim = Simulator()
    channel = Channel(sim, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield channel.put(item)

    def consumer():
        for _ in items:
            value = yield channel.get()
            received.append(value)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert received == items


# -- storage ---------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=60),
       st.integers(min_value=1, max_value=20))
def test_event_storage_never_exceeds_capacity_and_keeps_newest(ids, capacity):
    storage = EventStorage(capacity=capacity)
    for i in ids:
        storage.append(
            EventRecord(
                event_id=f"e{i}",
                item_id="x",
                event_type="alarm",
                severity=Severity.ALARM,
                value=i,
                message="",
                timestamp=float(i),
            )
        )
    assert len(storage) <= capacity
    expected = [f"e{i}" for i in ids][-capacity:]
    assert [e.event_id for e in storage.to_tuple()] == expected
    assert storage.total_written == len(ids)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=10),  # inter-arrival gap
            st.integers(min_value=0, max_value=5),  # events submitted
        ),
        max_size=40,
    ),
    st.floats(min_value=0.0001, max_value=0.01),
    st.integers(min_value=1, max_value=16),
)
def test_storage_station_stall_is_nonnegative_and_busy_monotonic(
    submissions, service_time, buffer_size
):
    station = StorageStation(service_time=service_time, buffer_size=buffer_size)
    now = 0.0
    previous_busy = 0.0
    for gap, count in submissions:
        now += gap
        stall = station.submit(now, count)
        assert stall >= 0.0
        assert station.busy_until >= previous_busy
        # A producer that waits out its stall is never stalled again
        # without new submissions.
        if count:
            assert station.submit(now + stall + buffer_size * service_time, 0) == 0.0
        previous_busy = station.busy_until


# -- subscriptions ------------------------------------------------------------------

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


@given(
    st.lists(
        st.tuples(st.booleans(), names, st.one_of(names, st.just("*"))),
        max_size=40,
    )
)
def test_subscription_manager_matches_reference_model(operations):
    manager = SubscriptionManager()
    model: set = set()
    for is_subscribe, subscriber, item in operations:
        if is_subscribe:
            manager.subscribe(subscriber, item)
            model.add((subscriber, item))
        else:
            manager.unsubscribe(subscriber, item)
            model.discard((subscriber, item))
    for item in {item for _s, item in model} | {"probe"}:
        expected = sorted(
            {s for s, i in model if i == item} | {s for s, i in model if i == "*"}
        )
        assert manager.subscribers_for(item) == expected


# -- values ---------------------------------------------------------------------------


@given(
    st.one_of(st.integers(), st.floats(allow_nan=False), st.booleans(), st.text(max_size=10)),
    st.floats(min_value=0, max_value=1e6),
)
def test_data_value_roundtrips_and_copies(raw, timestamp):
    value = DataValue(raw, timestamp=timestamp)
    assert decode(encode(value)) == value
    updated = value.with_value(raw)
    assert updated.timestamp == timestamp


# -- quorum arithmetic -----------------------------------------------------------------


@given(st.integers(min_value=0, max_value=20))
@settings(max_examples=21)
def test_bft_quorums_intersect_in_a_correct_replica(f):
    """Any two write quorums share at least f+1 replicas, hence one correct."""
    from repro.bftsmart import GroupConfig

    n = 3 * f + 1
    config = GroupConfig(n=n, f=f)
    quorum = config.write_quorum
    # |Q1 ∩ Q2| >= 2*quorum - n must exceed f.
    assert 2 * quorum - n >= f + 1
    assert config.reply_quorum == f + 1
    assert config.stop_quorum == 2 * f + 1
