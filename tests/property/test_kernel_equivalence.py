"""Property test: the ring kernel is observationally equal to the heap kernel.

Random scheduling scripts — mixes of ``defer``/``timer``/``call_later``,
cancellations (including double-cancels and cancels issued *during* the
run), nested re-scheduling from inside callbacks, and delays sampled to
hit the ring kernel's interesting regimes (zero, sub-tick, exact bucket
boundaries, and beyond the 8.192 s wheel horizon) — must produce the
identical fired sequence and the identical ``(time, priority, seq)``
dispatch schedule on both kernels.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RingSimulator, Simulator

TICK = RingSimulator.TICK
HORIZON = TICK * RingSimulator.NSLOTS

# Delays chosen to exercise every wheel regime: same-bucket ties, exact
# k*TICK bucket edges, float dust around the edges, far-heap deadlines.
delays = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=TICK, allow_nan=False),
    st.integers(min_value=1, max_value=40).map(lambda k: k * TICK),
    st.integers(min_value=1, max_value=40).map(lambda k: k * TICK + 1e-7),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=HORIZON, max_value=HORIZON * 3, allow_nan=False),
)

# A script step: (op, delay, extra). ``extra`` indexes into previously
# created cancellable timers (for "cancel") or picks a nested-op shape.
steps = st.lists(
    st.tuples(
        st.sampled_from(["defer", "timer", "call_later", "cancel", "nested"]),
        delays,
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=30,
)


def run_script(kernel, script, stop_at):
    sim = Simulator(seed=3, kernel=kernel)
    log = sim._schedule_log = []
    fired = []
    handles = []

    def apply(step, tag):
        op, delay, extra = step
        if op == "defer":
            sim.defer(delay, fired.append, tag)
        elif op == "timer":
            handles.append(sim.timer(delay, fired.append, tag))
        elif op == "call_later":
            handles.append(sim.call_later(delay, fired.append, tag))
        elif op == "cancel":
            if handles:
                handle = handles[extra % len(handles)]
                fired.append(("cancel", tag, sim.cancel_timer(handle)))
            else:
                sim.defer(delay, fired.append, tag)
        else:  # nested: schedule more work (and a cancel) from a callback
            def nested(tag=tag, delay=delay, extra=extra):
                fired.append(("nested", tag))
                sim.defer(delay, fired.append, (tag, "inner"))
                if handles:
                    handle = handles[extra % len(handles)]
                    fired.append(("nested-cancel", tag, sim.cancel_timer(handle)))

            sim.defer(delay, nested)

    for i, step in enumerate(script):
        apply(step, i)
    sim.run(until=stop_at)
    sim.run()  # drain the remainder, covering the stop/resume path
    return fired, log, sim.dispatched, sim.now


@settings(max_examples=60, deadline=None)
@given(steps, st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
def test_random_scripts_fire_identically(script, stop_at):
    fired_h, log_h, dispatched_h, now_h = run_script("heap", script, stop_at)
    fired_r, log_r, dispatched_r, now_r = run_script("ring", script, stop_at)
    assert fired_r == fired_h
    assert log_r == log_h
    assert dispatched_r == dispatched_h
    assert now_r == now_h
