"""Integration tests for the fleet scoreboard (``repro.obs.fleet``).

A real 2-shard deployment under a seeded workload: the scoreboard must
read health, latency, merge freshness and router stats without touching
the schedule, flag a crashed replica as degraded, record status
transitions, and render/serialise cleanly.
"""

import json

from repro.neoscada import HandlerChain, Monitor
from repro.net.faults import Drop
from repro.obs.fleet import FleetScoreboard
from repro.obs.report import (
    render_scoreboard,
    render_transitions,
    write_html_report,
)
from repro.obs.slo import SloEngine, SloSpec
from repro.shard import ShardedScadaConfig, build_sharded_scada
from repro.sim import Simulator

SENSORS = [f"plant.s{i}" for i in range(6)]


def build_fleet(seed=3, shards=2):
    sim = Simulator(seed=seed)
    system = build_sharded_scada(
        sim, config=ShardedScadaConfig(shards=shards)
    )
    for sensor in SENSORS:
        system.frontend.add_item(sensor, initial=20)
        system.attach_handlers(
            sensor, lambda: HandlerChain([Monitor(high=80.0)])
        )
    system.frontend.add_item("plant.actuator", initial=0, writable=True)
    system.start()
    return sim, system


def drive(sim, system, duration=1.0, scoreboard=None, interval=0.25):
    def updates():
        step = 0
        while sim.now < duration:
            yield sim.timeout(0.05)
            step += 1
            for i, sensor in enumerate(SENSORS):
                value = 90 if (step + i) % 4 == 0 else 30
                system.frontend.inject_update(sensor, value)

    def writes():
        number = 0
        while sim.now < duration:
            yield sim.timeout(0.2)
            number += 1
            system.hmi.write("plant.actuator", number)

    sim.process(updates())
    sim.process(writes())
    stop = sim.now + duration
    while sim.now < stop:
        sim.run(until=min(sim.now + interval, stop))
        if scoreboard is not None:
            scoreboard.sample()
    system.flush_events()
    sim.run(until=sim.now + 0.2)
    if scoreboard is not None:
        scoreboard.sample()


def test_sample_reads_health_and_traffic():
    sim, system = build_fleet()
    scoreboard = FleetScoreboard(system, slo_engine=SloEngine(sim=sim))
    drive(sim, system, scoreboard=scoreboard)
    sample = scoreboard.latest
    assert sample is not None and scoreboard.samples
    assert sample.status == "ok"
    assert [h.shard for h in sample.shards] == [0, 1]
    for health in sample.shards:
        assert health.live == health.n == 4
        assert health.leader.startswith(f"s{health.shard}-replica")
        assert health.status == "ok" and not health.reasons
        assert health.decided > 0
    # Traffic reached both the latency histogram and the router cache.
    assert sample.write_latency is not None
    assert sample.write_latency["count"] >= 4
    assert sample.router["hits"] + sample.router["misses"] > 0
    assert sample.burn  # SLO engine attached -> burn rates reported
    assert sample.violations == 0


def test_sampling_is_passive():
    sim_a, system_a = build_fleet(seed=9)
    drive(sim_a, system_a)
    sim_b, system_b = build_fleet(seed=9)
    scoreboard = FleetScoreboard(system_b, slo_engine=SloEngine(sim=sim_b))
    drive(sim_b, system_b, scoreboard=scoreboard)
    assert sim_b.dispatched == sim_a.dispatched
    assert sim_b.now == sim_a.now
    stream = lambda s: [  # noqa: E731
        (e.event_id, e.item_id, e.timestamp) for e in s.hmi.events
    ]
    assert stream(system_b) == stream(system_a)


def test_crashed_replica_degrades_then_recovers():
    sim, system = build_fleet()
    engine = SloEngine(
        specs=(
            SloSpec(name="avail", kind="availability", budget=0.05,
                    window=1.0),
        ),
        sim=sim,
    )
    scoreboard = FleetScoreboard(system, slo_engine=engine)
    drive(sim, system, duration=0.5, scoreboard=scoreboard)
    assert scoreboard.latest.status == "ok"

    # Crash one non-leader member of shard 0, chaos-style (replica +
    # adapter down, outbound dropped).
    victim = system.group(0)[-1]
    rules = []
    for addr in (victim.address, f"{victim.address}-adapter"):
        system.net.crash(addr)
        rules.append(system.net.faults.add(Drop(src=addr)))
    drive(sim, system, duration=0.5, scoreboard=scoreboard)
    sample = scoreboard.latest
    shard0 = sample.shards[0]
    assert shard0.live == 3 and shard0.status == "degraded"
    assert sample.shards[1].status == "ok"
    assert sample.status == "degraded"
    assert engine.violations and engine.violations[0].shard == 0

    # Recover: the fleet goes green again and the transition log shows
    # the full round trip.
    for addr in (victim.address, f"{victim.address}-adapter"):
        system.net.recover(addr)
    for rule in rules:
        if rule in system.net.faults.rules:
            system.net.faults.remove(rule)
    drive(sim, system, duration=2.0, scoreboard=scoreboard)
    assert scoreboard.latest.shards[0].live == 4
    assert scoreboard.latest.status == "ok"
    scopes = [(t["scope"], t["from"], t["to"]) for t in scoreboard.transitions]
    assert ("s0", "ok", "degraded") in scopes
    assert ("s0", "degraded", "ok") in scopes
    assert ("fleet", "ok", "degraded") in scopes


def test_quorum_loss_is_critical():
    sim, system = build_fleet()
    scoreboard = FleetScoreboard(system)
    for pm in system.group(1)[2:]:  # drop 2 of 4: live 2 < quorum 3
        system.net.crash(pm.address)
        system.net.crash(f"{pm.address}-adapter")
    scoreboard.sample()
    sample = scoreboard.latest
    assert sample.shards[1].status == "critical"
    assert sample.status == "critical"
    assert any("quorum" in r for r in sample.shards[1].reasons)


def test_scoreboard_works_without_engine_detector_or_merger():
    sim, system = build_fleet(shards=1)  # unsharded: no router, no merger
    scoreboard = FleetScoreboard(system)
    drive(sim, system, duration=0.5, scoreboard=scoreboard)
    sample = scoreboard.latest
    assert len(sample.shards) == 1 and sample.shards[0].live == 4
    assert sample.burn == {}
    assert sample.router == {} or sample.router.get("hits", 0) == 0


def test_to_dict_and_renderers_are_clean():
    sim, system = build_fleet()
    scoreboard = FleetScoreboard(system, slo_engine=SloEngine(sim=sim))
    drive(sim, system, duration=0.5, scoreboard=scoreboard)
    data = scoreboard.to_dict()
    encoded = json.dumps(data)  # must be JSON-serialisable as-is
    assert json.loads(encoded)["shards"] == 2
    assert data["samples"] and data["latest"]["status"] == "ok"
    board = render_scoreboard(scoreboard)
    assert "FLEET" in board and "s0" in board and "s1" in board
    assert render_transitions(scoreboard)


def test_html_report_is_static_and_self_contained(tmp_path):
    sim, system = build_fleet()
    scoreboard = FleetScoreboard(system, slo_engine=SloEngine(sim=sim))
    drive(sim, system, duration=0.5, scoreboard=scoreboard)
    path = tmp_path / "fleet.html"
    write_html_report(scoreboard, str(path))
    html = path.read_text()
    assert html.startswith("<!DOCTYPE html>" ) or "<html" in html
    assert "s0" in html and "s1" in html
    assert "<script src=" not in html  # no external dependencies
