"""Unit tests for the authenticated channel layer (Sealed envelopes)."""

from repro.bftsmart.channel import SecureChannel
from repro.bftsmart.messages import Sealed, Stop
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network
from repro.sim import Simulator


def make_channels(names=("a", "b"), secrets=None):
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.0001))
    secrets = secrets or {}
    channels = {}
    inboxes = {}
    for name in names:
        keystore = KeyStore(secrets.get(name, b"shared"))
        endpoint = net.endpoint(name)
        inboxes[name] = []
        endpoint.set_handler(
            lambda payload, src, n=name: inboxes[n].append(payload)
        )
        channels[name] = SecureChannel(endpoint, keystore)
    return sim, channels, inboxes


def test_seal_and_open_roundtrip():
    sim, channels, inboxes = make_channels()
    message = Stop(sender="a", regency=3)
    channels["a"].send("b", message)
    sim.run()
    sealed = inboxes["b"][0]
    assert isinstance(sealed, Sealed)
    assert channels["b"].open(sealed) == message


def test_open_rejects_wrong_key():
    sim, channels, inboxes = make_channels(secrets={"b": b"different"})
    channels["a"].send("b", Stop(sender="a", regency=1))
    sim.run()
    assert channels["b"].open(inboxes["b"][0]) is None
    assert channels["b"].rejected == 1


def test_open_rejects_missing_tag():
    sim, channels, _ = make_channels()
    sealed = channels["a"].seal(Stop(sender="a", regency=1), receivers=["c"])
    assert channels["b"].open(sealed) is None


def test_open_rejects_tampered_payload():
    sim, channels, _ = make_channels()
    sealed = channels["a"].seal(Stop(sender="a", regency=1), receivers=["b"])
    tampered = Sealed(
        sender=sealed.sender, payload=sealed.payload + b"x", tags=sealed.tags
    )
    assert channels["b"].open(tampered) is None


def test_open_rejects_undecodable_payload():
    sim, channels, _ = make_channels()
    auth = channels["a"].auth
    garbage = b"\xff\x00\xff"
    sealed = Sealed(sender="a", payload=garbage, tags={"b": auth.mac("b", garbage)})
    assert channels["b"].open(sealed) is None
    assert channels["b"].rejected == 1


def test_open_rejects_non_sealed():
    _sim, channels, _ = make_channels()
    assert channels["b"].open("just a string") is None


def test_broadcast_uses_one_mac_vector():
    sim, channels, inboxes = make_channels(("a", "b", "c"))
    channels["a"].broadcast(["b", "c"], Stop(sender="a", regency=2))
    sim.run()
    sealed_b = inboxes["b"][0]
    sealed_c = inboxes["c"][0]
    assert sealed_b == sealed_c  # same envelope, per-receiver tags inside
    assert set(sealed_b.tags) == {"b", "c"}
    assert channels["b"].open(sealed_b) == Stop(sender="a", regency=2)
    assert channels["c"].open(sealed_c) == Stop(sender="a", regency=2)


def test_broadcast_skips_self_by_default():
    sim, channels, inboxes = make_channels(("a", "b"))
    channels["a"].broadcast(["a", "b"], Stop(sender="a", regency=1))
    sim.run()
    assert inboxes["a"] == []
    assert len(inboxes["b"]) == 1


def test_replayed_envelope_to_wrong_receiver_fails():
    """A tag made for b does not verify at c (no cross-channel replay)."""
    sim, channels, _ = make_channels(("a", "b", "c"))
    sealed = channels["a"].seal(Stop(sender="a", regency=1), receivers=["b"])
    forged = Sealed(sender="a", payload=sealed.payload, tags={"c": sealed.tags["b"]})
    assert channels["c"].open(forged) is None


def test_sealed_wire_size_matches_real_encoding():
    """The arithmetic size hint must equal the actual encoded length."""
    from repro.bftsmart.messages import ClientRequest
    from repro.bftsmart.channel import sealed_wire_size
    from repro.wire import encode

    sim, channels, _ = make_channels(("a", "b", "c", "d"))
    messages = [
        Stop(sender="a", regency=1),
        ClientRequest(
            client_id="a", sequence=9, operation=bytes(300), reply_to="a"
        ),
    ]
    for message in messages:
        for receivers in (["b"], ["b", "c"], ["b", "c", "d"]):
            sealed = channels["a"].seal(message, receivers=receivers)
            assert sealed_wire_size(sealed) == len(encode(sealed))


def test_decode_share_open_returns_equal_message_without_reencoding():
    """Receivers of a seeded envelope see the sender's exact message."""
    from repro.perf import PERF, clear_hot_path_caches

    sim, channels, _ = make_channels(("a", "b"))
    message = Stop(sender="a", regency=4)
    clear_hot_path_caches()
    sealed = channels["a"].seal(message, receivers=["b"])
    opened = channels["b"].open(sealed)
    assert opened == message
    if PERF.decode_share:
        # Seeded at seal time: no decode happened on the open path.
        assert opened is message
