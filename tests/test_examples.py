"""The examples are part of the public API surface: they must keep running.

The quicker examples run in-process here; the long drills
(byzantine_fault_drill, proactive_recovery) are exercised by their own
integration tests and run standalone.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name", ["quickstart", "water_treatment_writes"]
)
def test_example_runs_clean(name, capsys):
    module = load_example(name)
    module.main()  # examples assert their own invariants
    out = capsys.readouterr().out
    assert out.strip()


def test_all_examples_have_docstrings_and_main():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), f"{path.name} lacks a docstring"
        assert "def main()" in source, f"{path.name} lacks main()"
        assert 'if __name__ == "__main__":' in source, path.name
