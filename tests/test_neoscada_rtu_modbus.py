"""Tests for RTUs, the Modbus-style protocol and field process models."""

import random

import pytest

from repro.neoscada import RTU
from repro.neoscada.field import PowerFeeder, WaterTank, clamp_register
from repro.neoscada.field.powergrid import BREAKER, CURRENT, VOLTAGE
from repro.neoscada.field.watertank import LEVEL, PUMP, VALVE
from repro.neoscada.protocols.modbus import (
    ExceptionReply,
    ILLEGAL_ADDRESS,
    ILLEGAL_VALUE,
    ModbusClient,
    ReadReply,
    WriteReply,
    check_register_value,
)
from repro.net import ConstantLatency, Network
from repro.sim import Simulator


def make_world():
    sim = Simulator(seed=5)
    net = Network(sim, latency=ConstantLatency(0.0002))
    return sim, net


def make_client(sim, net, name="poller"):
    endpoint = net.endpoint(name)
    client = ModbusClient(name, endpoint.send)
    endpoint.set_handler(lambda message, src: client.dispatch(message, src))
    return client


def test_check_register_value():
    assert check_register_value(0)
    assert check_register_value(0xFFFF)
    assert not check_register_value(-1)
    assert not check_register_value(0x10000)
    assert not check_register_value(True)
    assert not check_register_value(2.5)


def test_clamp_register():
    assert clamp_register(-5) == 0
    assert clamp_register(70000) == 0xFFFF
    assert clamp_register(123.6) == 124


def test_read_registers_roundtrip():
    sim, net = make_world()
    rtu = RTU(sim, net, "rtu-1")
    rtu.set_register(0, 11)
    rtu.set_register(1, 22)
    client = make_client(sim, net)
    replies = []
    client.read("rtu-1", 0, 2, replies.append)
    sim.run(until=1.0)
    assert isinstance(replies[0], ReadReply)
    assert replies[0].values == (11, 22)


def test_read_unknown_register_errors():
    sim, net = make_world()
    RTU(sim, net, "rtu-1").set_register(0, 1)
    client = make_client(sim, net)
    replies = []
    client.read("rtu-1", 5, 1, replies.append)
    sim.run(until=1.0)
    assert isinstance(replies[0], ExceptionReply)
    assert replies[0].code == ILLEGAL_ADDRESS


def test_write_register_requires_writability():
    sim, net = make_world()
    rtu = RTU(sim, net, "rtu-1", writable_registers=(1,))
    rtu.set_register(0, 5)
    rtu.set_register(1, 5)
    client = make_client(sim, net)
    replies = []
    client.write("rtu-1", 0, 9, replies.append)  # not writable
    client.write("rtu-1", 1, 9, replies.append)  # writable
    sim.run(until=1.0)
    assert isinstance(replies[0], ExceptionReply)
    assert isinstance(replies[1], WriteReply)
    assert rtu.registers[0] == 5
    assert rtu.registers[1] == 9


def test_write_out_of_range_value_rejected():
    sim, net = make_world()
    rtu = RTU(sim, net, "rtu-1", writable_registers=(0,))
    rtu.set_register(0, 1)
    client = make_client(sim, net)
    replies = []
    client.write("rtu-1", 0, 100_000, replies.append)
    sim.run(until=1.0)
    assert replies[0].code == ILLEGAL_VALUE


def test_rtu_steps_field_process():
    sim, net = make_world()
    rtu = RTU(sim, net, "rtu-1", process=PowerFeeder(), step_interval=0.1)
    sim.run(until=2.0)
    assert rtu.registers[VOLTAGE] > 2000  # ~230 V in decivolts
    assert rtu.registers[CURRENT] > 0


def test_power_feeder_breaker_drops_feeder():
    registers = PowerFeeder().initial_registers()
    feeder = PowerFeeder()
    rng = random.Random(1)
    registers[BREAKER] = 0
    updates = feeder.step(0.5, rng, registers)
    assert updates[VOLTAGE] == 0
    assert updates[CURRENT] == 0


def test_power_feeder_tracks_load_swings():
    feeder = PowerFeeder(load_swing=0.5, noise=0.0, day_length=10.0)
    registers = feeder.initial_registers()
    rng = random.Random(1)
    currents = []
    for _ in range(20):
        registers.update(feeder.step(0.5, rng, registers))
        currents.append(registers[CURRENT])
    assert max(currents) > min(currents) * 1.5


def test_water_tank_pump_and_valve_balance():
    tank = WaterTank(initial_level_mm=2000, pump_rate_mm_s=30, drain_rate_mm_s=20, noise=0.0)
    registers = tank.initial_registers()
    rng = random.Random(1)
    registers[PUMP] = 1
    registers[VALVE] = 0  # no outflow
    for _ in range(10):
        registers.update(tank.step(1.0, rng, registers))
    assert registers[LEVEL] > 2200
    registers[PUMP] = 0
    registers[VALVE] = 100
    for _ in range(10):
        registers.update(tank.step(1.0, rng, registers))
    assert registers[LEVEL] < 2400


def test_water_tank_level_bounded():
    tank = WaterTank(capacity_mm=1000, initial_level_mm=990, noise=0.0)
    registers = tank.initial_registers()
    registers[PUMP] = 1
    registers[VALVE] = 0
    rng = random.Random(1)
    for _ in range(100):
        registers.update(tank.step(1.0, rng, registers))
    assert registers[LEVEL] == 1000


def test_rtu_write_notifies_field_process():
    sim, net = make_world()
    rtu = RTU(
        sim,
        net,
        "rtu-1",
        process=PowerFeeder(),
        step_interval=0.1,
        writable_registers=(BREAKER,),
    )
    client = make_client(sim, net)
    replies = []
    client.write("rtu-1", BREAKER, 0, replies.append)
    sim.run(until=1.0)
    assert isinstance(replies[0], WriteReply)
    assert rtu.registers[VOLTAGE] == 0  # feeder dropped on next step


def test_rtu_stats_counters():
    sim, net = make_world()
    rtu = RTU(sim, net, "rtu-1")
    rtu.set_register(0, 1)
    client = make_client(sim, net)
    client.read("rtu-1", 0, 1, lambda r: None)
    client.read("rtu-1", 9, 1, lambda r: None)
    sim.run(until=1.0)
    assert rtu.stats["reads"] == 2
    assert rtu.stats["errors"] == 1
