"""Tests for lazy timer cancellation and kernel determinism.

The kernel tombstones cancelled heap entries instead of removing them
(O(1) cancel) and the run loop discards tombstones when they surface.
These tests pin down the contract: a cancelled timer *never* fires, the
heap does not grow without bound under create/cancel churn, the kernel
counters account for everything, and — the property the whole hot-path
performance pass rests on — enabling the optimisation switches changes
no event order and no simulation result.
"""

import math

import pytest

from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network
from repro.perf import clear_hot_path_caches, hot_path_optimizations
from repro.sim import SimulationError, Simulator


def test_cancelled_call_never_fires():
    sim = Simulator()
    fired = []
    call = sim.call_later(1.0, fired.append, "nope")
    assert call.cancel() is True
    sim.run()
    assert fired == []
    assert not call.processed


def test_cancel_is_idempotent():
    sim = Simulator()
    call = sim.call_later(1.0, lambda: None)
    assert call.cancel() is True
    assert call.cancel() is False
    sim.run()


def test_cancel_after_firing_is_a_noop():
    sim = Simulator()
    fired = []
    call = sim.call_later(1.0, fired.append, "yes")
    sim.run()
    assert fired == ["yes"]
    assert call.cancel() is False


def test_cancelled_timeout_callbacks_never_run():
    sim = Simulator()
    seen = []
    timeout = sim.timeout(1.0, value="late")
    timeout.add_callback(lambda ev: seen.append(ev.value))
    assert timeout.cancel() is True
    sim.run()
    assert seen == []


def test_cancel_inside_run_skips_pending_entry():
    # Cancel a timer from another event firing at an earlier time: the
    # already-heaped entry must be skipped, not dispatched.
    sim = Simulator()
    fired = []
    timer = sim.call_later(2.0, fired.append, "stale")
    sim.call_later(1.0, timer.cancel)
    sim.run()
    assert fired == []
    assert sim.stats()["tombstones_skipped"] == 1


@pytest.mark.parametrize("delay", [float("nan"), math.inf, -math.inf, -0.001])
def test_call_later_rejects_bad_delays(delay):
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_later(delay, lambda: None)


@pytest.mark.parametrize("delay", [float("nan"), math.inf])
def test_succeed_rejects_non_finite_delays(delay):
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().succeed(delay=delay)


def test_peek_discards_tombstones():
    sim = Simulator()
    first = sim.call_later(1.0, lambda: None)
    sim.call_later(2.0, lambda: None)
    first.cancel()
    assert sim.peek() == 2.0
    assert sim.stats()["tombstones_skipped"] == 1


def test_heap_stays_bounded_under_timer_churn():
    """The retransmission pattern: arm a timer, finish early, cancel it.

    200 timers are created and cancelled, but at most a handful of
    entries are ever live-or-tombstoned on the heap at once because each
    round's tombstone surfaces (and is discarded) before the next rounds
    pile up. Without lazy-deletion accounting this is the pattern that
    used to leak stale callbacks into the dispatch stream.
    """
    sim = Simulator()
    stale = []
    rounds = 200

    def client():
        for _ in range(rounds):
            timer = sim.call_later(1.5, stale.append, sim.now)
            yield sim.timeout(1.0)  # "reply" arrives before the timer
            assert timer.cancel() is True

    sim.run_process(client())
    sim.run()  # drain the final round's tombstone
    stats = sim.stats()
    assert stale == []
    assert stats["timers_cancelled"] == rounds
    assert stats["tombstones_skipped"] == rounds
    assert stats["heap_pending"] == 0
    assert stats["heap_peak"] <= 5  # bounded, not O(rounds)


def test_stats_counters_account_for_every_entry():
    sim = Simulator()
    for i in range(10):
        sim.call_later(float(i), lambda: None)
    cancelled = [sim.call_later(20.0 + i, lambda: None) for i in range(4)]
    for call in cancelled:
        call.cancel()
    sim.run()
    stats = sim.stats()
    assert stats["events_dispatched"] == 10
    assert stats["timers_cancelled"] == 4
    assert stats["tombstones_skipped"] == 4
    assert stats["heap_pending"] == 0
    assert stats["heap_peak"] == 14


def _replicated_counter_trace(optimizations: bool):
    """Run a small replicated-counter workload; return its full outcome.

    The returned tuple captures everything observable: per-request
    results in completion order, final replica states, the simulated
    clock and the kernel counters. If any optimisation reordered even
    one event, the dispatch counts and completion times would differ.
    """
    from repro.bftsmart import CounterService, GroupConfig, build_group, build_proxy
    from repro.wire import decode, encode

    clear_hot_path_caches()
    with hot_path_optimizations(optimizations):
        sim = Simulator(seed=7)
        net = Network(sim, latency=ConstantLatency(0.0003))
        keystore = KeyStore()
        config = GroupConfig(n=4, f=1, request_timeout=0.5, sync_timeout=1.0)
        replicas = build_group(sim, net, config, CounterService, keystore)
        proxy = build_proxy(sim, net, "client-1", config, keystore)

        results = []

        def client():
            for _ in range(15):
                raw = yield proxy.invoke_ordered(encode(("add", 1)))
                results.append((sim.now, decode(raw)))
            return None

        sim.run_process(client(), until=60)
        return (
            tuple(results),
            tuple(r.service.value for r in replicas),
            tuple(sorted(replicas[0].stats.items())),
            sim.now,
            sim.dispatched,
        )


def test_optimizations_change_no_event_order():
    """Same seed, caches off vs on: bit-identical simulation outcomes."""
    baseline = _replicated_counter_trace(optimizations=False)
    optimized = _replicated_counter_trace(optimizations=True)
    assert baseline == optimized


def test_same_seed_same_trace_under_cancellation_churn():
    def run_once():
        sim = Simulator(seed=3)
        order = []

        def proc(tag):
            for i in range(20):
                timer = sim.call_later(0.3, order.append, (tag, "stale", i))
                jitter = sim.rng.stream(tag).random() * 0.2
                yield sim.timeout(jitter)
                timer.cancel()
                order.append((tag, sim.now))

        for tag in ("a", "b", "c"):
            sim.process(proc(tag))
        sim.run()
        return order, sim.stats()

    first_order, first_stats = run_once()
    second_order, second_stats = run_once()
    assert first_order == second_order
    assert first_stats == second_stats
    assert not any(entry[1] == "stale" for entry in first_order)
