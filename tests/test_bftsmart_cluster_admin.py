"""Tests for the cluster builders and the reconfiguration Administrator."""

import pytest

from repro.bftsmart import (
    Administrator,
    CounterService,
    GroupConfig,
    RECONFIG_MARKER,
    SilentReplica,
    build_group,
    build_proxy,
)
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network
from repro.sim import Simulator
from repro.wire import decode


def make_world():
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.0003))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1)
    return sim, net, keystore, config


def test_build_group_gives_each_replica_its_own_service():
    sim, net, keystore, config = make_world()
    replicas = build_group(sim, net, config, CounterService, keystore)
    assert len(replicas) == 4
    services = {id(r.service) for r in replicas}
    assert len(services) == 4  # replication protects *independent* copies
    assert [r.address for r in replicas] == [f"replica-{i}" for i in range(4)]


def test_build_group_replica_class_overrides():
    sim, net, keystore, config = make_world()
    replicas = build_group(
        sim, net, config, CounterService, keystore, replica_classes={2: SilentReplica}
    )
    assert isinstance(replicas[2], SilentReplica)
    assert not isinstance(replicas[0], SilentReplica)


def test_build_proxy_view_matches_group():
    sim, net, keystore, config = make_world()
    proxy = build_proxy(sim, net, "c", config, keystore)
    assert proxy.view.addresses == config.addresses
    assert proxy.view.f == config.f


def test_administrator_operation_is_marked_and_signed():
    sim, net, keystore, config = make_world()
    proxy = build_proxy(sim, net, "admin-c", config, keystore)
    admin = Administrator(proxy, keystore)
    operation = admin.build_operation(join=("replica-4",), leave=("replica-1",))
    assert operation.startswith(RECONFIG_MARKER)
    request = decode(operation[len(RECONFIG_MARKER):])
    assert request.admin == "admin"
    assert request.join == ("replica-4",)
    assert request.leave == ("replica-1",)
    assert request.new_f == config.f
    assert len(request.signature) == 32


def test_administrator_updates_own_view_on_success():
    sim, net, keystore, config = make_world()
    build_group(sim, net, config, CounterService, keystore)
    proxy = build_proxy(sim, net, "admin-c", config, keystore)
    admin = Administrator(proxy, keystore)
    from repro.bftsmart import ServiceReplica, View

    event = admin.reconfigure(join=("replica-4",))
    ServiceReplica(
        sim,
        net,
        "replica-4",
        config,
        CounterService(),
        keystore,
        view=View(1, config.addresses + ("replica-4",), 1),
    )
    sim.run(until=sim.now + 5, stop_on=event)
    assert event.ok
    assert proxy.view.view_id == 1
    assert "replica-4" in proxy.view.addresses
