"""Pipelining must not change *what* is decided, only how fast.

The leader's in-flight window alters batch boundaries and decision
arrival order, but the executed request stream is fully determined by
request arrival order (clients are open-loop, so arrivals don't depend
on replies). A seeded run at depth 1 and at depth 4 must therefore
execute the exact same (client, sequence) stream — the guard CI runs to
catch any pipelining change that leaks into ordering semantics.
"""

from repro.bftsmart import CounterService, GroupConfig, build_group, build_proxy
from repro.crypto import KeyStore
from repro.net import ConstantLatency, Network
from repro.sim import Simulator
from repro.wire import decode, encode

CLIENTS = 2
REQUESTS_EACH = 30


def run_seeded(depth: int, seed: int = 11):
    sim = Simulator(seed=seed)
    net = Network(sim, latency=ConstantLatency(0.004))
    keystore = KeyStore()
    config = GroupConfig(
        n=4, f=1, batch_max=8, batch_wait=0.0005, pipeline_depth=depth
    )
    replicas = build_group(sim, net, config, CounterService, keystore)
    events = []

    def sender(proxy):
        for _ in range(REQUESTS_EACH):
            events.append(proxy.invoke_ordered(encode(("add", 1))))
            yield sim.timeout(0.002)

    for i in range(CLIENTS):
        proxy = build_proxy(
            sim, net, f"client-{i}", config, keystore, invoke_timeout=30.0
        )
        sim.process(sender(proxy))
    sim.run(until=sim.now + 10)
    assert len(events) == CLIENTS * REQUESTS_EACH
    assert all(event.ok for event in events)
    return sim, replicas


def decided_stream(replica):
    """The executed requests, flattened in execution (cid) order."""
    stream = []
    for _cid, value, _timestamp in replica.decision_log:
        if value == b"":
            continue
        for request in decode(value).requests:
            stream.append((request.client_id, request.sequence))
    return stream


def test_depth_1_and_depth_4_decide_identical_sequences():
    sim1, sequential = run_seeded(depth=1)
    sim4, pipelined = run_seeded(depth=4)

    # Within each run every replica executed the same stream...
    streams1 = [decided_stream(r) for r in sequential]
    streams4 = [decided_stream(r) for r in pipelined]
    assert all(s == streams1[0] for s in streams1)
    assert all(s == streams4[0] for s in streams4)
    # ...and across depths the streams are byte-for-byte identical.
    assert streams1[0] == streams4[0]
    assert len(streams1[0]) == CLIENTS * REQUESTS_EACH
    assert all(r.service.value == CLIENTS * REQUESTS_EACH for r in sequential)
    assert all(r.service.value == CLIENTS * REQUESTS_EACH for r in pipelined)

    # The comparison is meaningful: the offered load outruns sequential
    # ordering (8 req / ~12 ms instance), so the depth-4 leader really
    # did overlap instances.
    assert sim1.stats()["pipeline.replica-0"]["occupancy_peak"] == 1
    assert sim4.stats()["pipeline.replica-0"]["occupancy_peak"] >= 2
