"""Unit tests for per-instance consensus bookkeeping."""

import pytest

from repro.bftsmart.consensus import Instance
from repro.crypto import digest


def test_set_proposal_returns_digest():
    instance = Instance(0, 0)
    d = instance.set_proposal(b"batch", 1.5)
    assert d == digest(b"batch")
    assert instance.proposal_timestamp == 1.5


def test_write_quorum_counts_matching_digests_only():
    instance = Instance(0, 0)
    d = instance.set_proposal(b"batch", 0.0)
    other = digest(b"other")
    instance.add_write("r0", d)
    instance.add_write("r1", other)
    instance.add_write("r2", d)
    assert instance.write_count(d) == 2
    assert not instance.has_write_quorum(3)
    instance.add_write("r3", d)
    assert instance.has_write_quorum(3)


def test_first_vote_per_sender_wins():
    instance = Instance(0, 0)
    d = instance.set_proposal(b"batch", 0.0)
    instance.add_write("r0", digest(b"evil"))
    instance.add_write("r0", d)  # equivocation attempt: ignored
    assert instance.write_count(d) == 0


def test_accept_quorum_decides():
    instance = Instance(5, 0)
    d = instance.set_proposal(b"value", 2.0)
    for replica in ("r0", "r1", "r2"):
        instance.add_accept(replica, d)
    assert instance.has_accept_quorum(3)
    instance.decide()
    assert instance.decided
    assert instance.decided_value == b"value"
    assert instance.decided_timestamp == 2.0


def test_decide_without_proposal_raises():
    instance = Instance(0, 0)
    with pytest.raises(RuntimeError):
        instance.decide()


def test_quorum_needs_proposal():
    instance = Instance(0, 0)
    d = digest(b"value")
    for replica in ("r0", "r1", "r2"):
        instance.add_write(replica, d)
        instance.add_accept(replica, d)
    # Without the proposal itself, votes alone cannot decide.
    assert not instance.has_write_quorum(3)
    assert not instance.has_accept_quorum(3)


def test_advance_epoch_resets_votes():
    instance = Instance(0, 0)
    d = instance.set_proposal(b"batch", 0.0)
    instance.add_write("r0", d)
    instance.write_sent = True
    instance.advance_epoch(2)
    assert instance.epoch == 2
    assert instance.proposal_value is None
    assert instance.writes == {}
    assert not instance.write_sent


def test_advance_epoch_must_grow():
    instance = Instance(0, 3)
    with pytest.raises(ValueError):
        instance.advance_epoch(3)
