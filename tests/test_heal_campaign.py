"""End-to-end tests for closed-loop self-healing inside chaos campaigns.

The acceptance story of the heal subsystem, as campaigns: a planted
Byzantine replica is evicted and replaced with every safety/liveness
monitor green; benign faults never trigger the orchestrator; the quorum
guard refuses unsafe actions under a double fault; the action log is
bit-identical across the heap and ring event kernels; and with healing
disabled the campaign fingerprint is exactly the feature-absent one.
"""

from dataclasses import replace as dc_replace

from repro.chaos import (
    CrashReplica,
    KillLeader,
    Schedule,
    SwapByzantine,
    get_scenario,
    run_campaign,
    run_scenario,
)
from repro.chaos.campaign import CampaignConfig
from repro.heal import HealConfig

SEED = 3


def test_eviction_drill_replaces_byzantine_replica():
    report = run_scenario("heal-evict-falsifying", seed=SEED)
    assert report.ok, report.violations
    assert report.evictions == 1
    completed = [
        a for a in report.heal_actions if a["outcome"] == "completed"
    ]
    assert [a["kind"] for a in completed] == ["evict"]
    assert completed[0]["target"] == "replica-2"
    assert completed[0]["trigger_kind"] == "byzantine-falsifying"
    assert "replaced by replica-4" in completed[0]["detail"]


def test_eviction_handles_byzantine_leader():
    """Evicting the *initial leader* exercises reconfiguration through a
    regency the suspect no longer controls."""
    report = run_scenario("heal-evict-equivocating", seed=SEED)
    assert report.ok, report.violations
    assert report.evictions == 1
    assert any(
        a["target"] == "replica-0" and a["outcome"] == "completed"
        for a in report.heal_actions
    )


def test_benign_faults_never_trigger_the_orchestrator():
    report = run_scenario("heal-benign-leader-kill", seed=SEED)
    assert report.ok, report.violations
    assert report.heal_actions == []
    assert report.evictions == 0


def test_quorum_guard_blocks_unsafe_recovery():
    """Double fault: with one replica crashed, acting on the (detected)
    silent one would drop the group below 2f+1 — every attempt must be
    refused and escalate to an operator alarm, never an eviction."""
    report = run_scenario("heal-quorum-guard", seed=SEED)
    assert report.ok, report.violations
    assert report.evictions == 0
    outcomes = {a["outcome"] for a in report.heal_actions}
    assert "blocked" in outcomes
    assert "completed" not in outcomes
    alarms = [a for a in report.heal_actions if a["outcome"] == "raised"]
    assert len(alarms) == 1
    assert "quorum guard refused" in alarms[0]["detail"]


def test_action_log_identical_on_both_kernels():
    scenario = get_scenario("heal-evict-lying")
    logs = {}
    for kernel in ("heap", "ring"):
        config = dc_replace(scenario.config(seed=SEED), kernel=kernel)
        report = run_campaign(scenario.schedule(), config)
        assert report.ok, report.violations
        logs[kernel] = (report.heal_actions, report.fingerprint())
    assert logs["heap"] == logs["ring"]


def test_heal_disabled_fingerprint_matches_feature_absent():
    """The plumbing added for healing must be invisible when off: the
    same campaign fingerprints identically with heal absent, with the
    passive IDS on, and with heal explicitly disabled alongside it."""
    schedule = Schedule([
        KillLeader(at=1.5, duration=1.5),
        CrashReplica(at=3.5, index=2, duration=1.0),
    ])
    plain = run_campaign(schedule, CampaignConfig(seed=SEED))
    ids_only = run_campaign(schedule, CampaignConfig(seed=SEED, ids=True))
    ids_no_heal = run_campaign(
        schedule, CampaignConfig(seed=SEED, ids=True, heal=False)
    )
    assert plain.fingerprint() == ids_only.fingerprint()
    assert plain.fingerprint() == ids_no_heal.fingerprint()
    assert ids_no_heal.heal_actions == []


def test_healing_restores_liveness_after_open_ended_attack():
    """Without healing an open-ended Byzantine swap only ends at the
    horizon; with it, the suspect is evicted early and every operator
    write still completes."""
    schedule = Schedule([
        SwapByzantine(at=1.2, index=2, behaviour="lying"),
    ])
    config = CampaignConfig(
        seed=SEED, heal=True, heal_config=HealConfig.zero_trust()
    )
    report = run_campaign(schedule, config)
    assert report.ok, report.violations
    assert report.evictions == 1
    assert report.writes_total > 0
    assert report.writes_succeeded == report.writes_total
    evicted_at = next(
        a["completed_at"]
        for a in report.heal_actions
        if a["outcome"] == "completed"
    )
    assert evicted_at < config.horizon  # healed well before the fault "ends"
