"""Unit tests for the simulated durable-storage subsystem.

Covers the SimDisk fsync-barrier and crash-fault semantics, the
digest-framed WAL under every fsync policy, the atomic-rename
checkpoint store, and the ReplicaStorage recovery read path.
"""

import pytest

from repro.crypto import digest
from repro.storage import (
    CRASH_MODES,
    FSYNC_POLICIES,
    CheckpointStore,
    ReplicaStorage,
    SimDisk,
    WriteAheadLog,
)
from repro.wire import decode, encode


# ----------------------------------------------------------------------
# SimDisk
# ----------------------------------------------------------------------


def test_disk_appends_are_volatile_until_fsync():
    disk = SimDisk("d")
    disk.log_append(b"one")
    assert disk.log_records() == [b"one"]  # readers see the cache
    assert disk.dirty
    disk.crash("intact")
    assert disk.log_records() == []  # ...but a crash loses it


def test_disk_fsync_makes_appends_crash_proof():
    disk = SimDisk("d")
    disk.log_append(b"one")
    disk.log_append(b"two")
    disk.fsync()
    assert not disk.dirty
    disk.crash("intact")
    assert disk.log_records() == [b"one", b"two"]


def test_disk_torn_crash_halves_the_in_flight_record():
    disk = SimDisk("d")
    disk.log_append(b"durable")
    disk.fsync()
    disk.log_append(b"0123456789")  # in flight at crash time
    disk.crash("torn")
    assert disk.log_records() == [b"durable", b"01234"]


def test_disk_torn_crash_with_clean_cache_tears_last_durable():
    disk = SimDisk("d")
    disk.log_append(b"0123456789")
    disk.fsync()
    disk.crash("torn")
    assert disk.log_records() == [b"01234"]


def test_disk_corrupt_crash_flips_one_bit_silently():
    disk = SimDisk("d")
    disk.log_append(b"abcdef")
    disk.fsync()
    disk.crash("corrupt")
    (record,) = disk.log_records()
    assert record != b"abcdef"
    assert len(record) == 6
    # Exactly one bit differs.
    diff = [a ^ b for a, b in zip(record, b"abcdef")]
    assert sum(bin(d).count("1") for d in diff) == 1


def test_disk_wiped_crash_loses_everything():
    disk = SimDisk("d")
    disk.log_append(b"rec")
    disk.put_blob("blob", b"data")
    disk.fsync()
    disk.crash("wiped")
    assert disk.log_records() == []
    assert disk.blob_names() == []


def test_disk_rejects_unknown_crash_mode():
    with pytest.raises(ValueError):
        SimDisk("d").crash("melted")
    assert set(CRASH_MODES) == {"intact", "torn", "corrupt", "wiped"}


def test_disk_rename_requires_durable_source():
    disk = SimDisk("d")
    disk.put_blob("a.tmp", b"data")
    with pytest.raises(ValueError):
        disk.rename_blob("a.tmp", "a")  # classic torn-install bug
    disk.fsync()
    disk.rename_blob("a.tmp", "a")
    assert disk.read_blob("a") == b"data"  # visible immediately...
    disk.crash("intact")
    assert disk.blob_names() == ["a.tmp"]  # ...durable only after fsync


def test_disk_counters_track_barriers_and_volume():
    disk = SimDisk("d")
    disk.log_append(b"x" * 100)
    disk.fsync()
    counters = disk.counters()
    assert counters["fsyncs"] == 1
    assert counters["appends"] == 1
    assert counters["bytes_written"] == 100
    assert counters["busy_time"] > 0


# ----------------------------------------------------------------------
# WriteAheadLog
# ----------------------------------------------------------------------


def _filled_wal(policy, count=5, interval=3):
    disk = SimDisk("d")
    wal = WriteAheadLog(disk, policy=policy, interval=interval)
    for cid in range(count):
        wal.append(cid, b"value-%d" % cid, float(cid))
    return disk, wal


def test_wal_roundtrips_entries():
    disk, wal = _filled_wal("every-decision")
    entries, damaged = WriteAheadLog(disk).replay()
    assert not damaged
    assert entries == [(cid, b"value-%d" % cid, float(cid)) for cid in range(5)]


@pytest.mark.parametrize("policy", FSYNC_POLICIES)
def test_wal_fsync_policies_bound_the_loss_window(policy):
    disk, wal = _filled_wal(policy, count=5, interval=3)
    disk.crash("intact")
    entries, damaged = WriteAheadLog(disk).replay()
    assert not damaged
    survived = [cid for cid, _, _ in entries]
    if policy == "every-decision":
        assert survived == [0, 1, 2, 3, 4]  # nothing lost, ever
    elif policy == "every-n":
        assert survived == [0, 1, 2]  # loss window < interval
    else:  # checkpoint-only
        assert survived == []  # whole tail gone


def test_wal_detects_torn_tail_and_repairs_the_log():
    disk, wal = _filled_wal("every-decision")
    disk.crash("torn")
    entries, damaged = WriteAheadLog(disk).replay()
    assert damaged
    assert [cid for cid, _, _ in entries] == [0, 1, 2, 3]
    # The damaged suffix was cut: a fresh replay is clean.
    entries2, damaged2 = WriteAheadLog(disk).replay()
    assert not damaged2
    assert len(entries2) == 4


def test_wal_detects_silent_bit_flip():
    disk, wal = _filled_wal("every-decision")
    disk.crash("corrupt")
    entries, damaged = WriteAheadLog(disk).replay()
    assert damaged
    assert [cid for cid, _, _ in entries] == [0, 1, 2, 3]


def test_wal_truncate_through_drops_checkpointed_prefix():
    disk, wal = _filled_wal("every-decision")
    wal.truncate_through(2)
    assert wal.tail_cids == [3, 4]
    entries, damaged = WriteAheadLog(disk).replay()
    assert not damaged
    assert [cid for cid, _, _ in entries] == [3, 4]


def test_wal_rejects_unknown_policy():
    with pytest.raises(ValueError):
        WriteAheadLog(SimDisk("d"), policy="yolo")
    with pytest.raises(ValueError):
        WriteAheadLog(SimDisk("d"), policy="every-n", interval=0)


# ----------------------------------------------------------------------
# CheckpointStore
# ----------------------------------------------------------------------


def test_checkpoint_roundtrip_and_retention():
    disk = SimDisk("d")
    store = CheckpointStore(disk, retention=2)
    for cid in (4, 9, 14):
        store.install(cid, b"snapshot-%d" % cid)
    assert store.load_newest() == (14, b"snapshot-14")
    # Retention bound: only the last two generations survive.
    names = [n for n in disk.blob_names() if not n.endswith(".tmp")]
    assert len(names) == 2


def test_checkpoint_survives_crash_after_install():
    disk = SimDisk("d")
    CheckpointStore(disk).install(7, b"snap")
    disk.crash("intact")
    assert CheckpointStore(disk).load_newest() == (7, b"snap")


def test_checkpoint_corruption_falls_back_a_generation():
    disk = SimDisk("d")
    store = CheckpointStore(disk, retention=2)
    store.install(4, b"old-snapshot")
    store.install(9, b"new-snapshot")
    # Log is empty, so the corrupt fault hits the newest blob.
    disk.crash("corrupt")
    assert CheckpointStore(disk).load_newest() == (4, b"old-snapshot")


def test_checkpoint_orphaned_tmp_is_never_loaded():
    disk = SimDisk("d")
    store = CheckpointStore(disk)
    store.install(4, b"good")
    # A mid-install crash leaves a durable .tmp with no rename.
    disk.put_blob("checkpoint-000000000009.tmp", b"half-written")
    disk.fsync()
    disk.crash("intact")
    assert CheckpointStore(disk).load_newest() == (4, b"good")


# ----------------------------------------------------------------------
# ReplicaStorage recovery read path
# ----------------------------------------------------------------------


def _decided(storage, cids):
    for cid in cids:
        storage.on_decided(cid, b"batch-%d" % cid, float(cid))


def test_recover_returns_checkpoint_plus_contiguous_tail():
    storage = ReplicaStorage("replica-0")
    _decided(storage, range(5))
    storage.on_checkpoint(4, b"snapshot-at-4")
    _decided(storage, range(5, 8))
    storage.crash("intact")
    recovered = storage.recover()
    assert not recovered.damaged
    assert recovered.checkpoint_cid == 4
    assert recovered.snapshot == b"snapshot-at-4"
    assert [cid for cid, _, _ in recovered.entries] == [5, 6, 7]
    assert recovered.last_cid == 7


def test_recover_flags_torn_tail_as_damaged():
    storage = ReplicaStorage("replica-0")
    _decided(storage, range(5))
    storage.on_checkpoint(4, b"snap")
    _decided(storage, range(5, 8))
    storage.crash("torn")
    recovered = storage.recover()
    assert recovered.damaged
    assert "digest" in recovered.notes


def test_recover_flags_wal_gap_as_damaged():
    storage = ReplicaStorage("replica-0")
    _decided(storage, [0, 1, 2])
    storage.on_checkpoint(2, b"snap")
    # Simulate a history the checkpoint cannot anchor: entries resume
    # past a hole (as after falling back a checkpoint generation).
    _decided(storage, [5, 6])
    storage.crash("intact")
    recovered = storage.recover()
    assert recovered.damaged
    assert "gap" in recovered.notes
    assert recovered.entries == []  # un-anchorable tail dropped
    assert recovered.last_cid == 2


def test_recover_after_wipe_is_a_clean_slate():
    storage = ReplicaStorage("replica-0")
    _decided(storage, range(6))
    storage.on_checkpoint(5, b"snap")
    storage.crash("wiped")
    recovered = storage.recover()
    assert not recovered.damaged  # an empty disk is honest, not lying
    assert recovered.checkpoint_cid == -1
    assert recovered.snapshot is None
    assert recovered.entries == []
    assert recovered.last_cid == -1


def test_reinstall_reseeds_disk_to_match_transferred_state():
    storage = ReplicaStorage("replica-0")
    _decided(storage, range(3))
    log = [(10, b"ten", 1.0), (11, b"eleven", 1.1)]
    storage.reinstall(9, b"snapshot-at-9", log)
    storage.crash("intact")
    recovered = storage.recover()
    assert not recovered.damaged
    assert recovered.checkpoint_cid == 9
    assert [cid for cid, _, _ in recovered.entries] == [10, 11]


def test_counters_include_recovery_metrics():
    storage = ReplicaStorage("replica-0")
    _decided(storage, range(3))
    storage.crash("intact")
    storage.recover()
    counters = storage.counters()
    assert counters["recoveries"] == 1
    assert counters["bytes_replayed"] > 0
    assert counters["crashes"] == 1
