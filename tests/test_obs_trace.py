"""Tests for span tracing (``repro.obs``): unit, end-to-end, exporters."""

import json

import pytest

from repro.obs.export import (
    autopsy,
    chrome_trace,
    format_autopsy,
    pick_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.trace import SpanTracer, install_tracer, request_trace_id
from repro.sim import Simulator


# -- tracer unit behaviour ---------------------------------------------------


def test_begin_end_records_interval():
    sim = Simulator()
    tracer = install_tracer(sim)
    span = tracer.begin("work", "t1", process="p")
    sim.call_later(0.5, lambda: tracer.end(span, note="done"))
    sim.run()
    assert span.start == 0.0
    assert span.end == 0.5
    assert span.duration == 0.5
    assert span.attrs["note"] == "done"


def test_first_span_becomes_root_and_parentless_attach_under_it():
    sim = Simulator()
    tracer = SpanTracer(sim)
    root = tracer.begin("request", "t1", process="client")
    child = tracer.begin("consensus", "t1", process="replica-0")
    explicit = tracer.begin("sub", "t1", parent=child, process="replica-0")
    assert tracer.root_of("t1") is root
    assert child.parent_id == root.span_id
    assert explicit.parent_id == child.span_id


def test_alias_merges_trees():
    sim = Simulator()
    tracer = SpanTracer(sim)
    hmi = tracer.begin("hmi.write", "op:42", process="hmi")
    tracer.alias("req:c:1", "op:42")
    bft = tracer.begin("request", "req:c:1", process="client")
    assert bft.trace_id == "op:42"
    assert bft.parent_id == hmi.span_id
    assert tracer.spans_for("req:c:1") == tracer.spans_for("op:42")


def test_max_spans_cap_counts_dropped():
    sim = Simulator()
    tracer = SpanTracer(sim, max_spans=2)
    tracer.begin("a", "t1")
    tracer.begin("b", "t1")
    detached = tracer.begin("c", "t1")
    tracer.end(detached)  # harmless on a dropped span
    assert len(tracer.spans) == 2
    assert tracer.dropped == 1


def test_point_is_zero_duration():
    sim = Simulator()
    tracer = SpanTracer(sim)
    span = tracer.point("wal.append", "t1", process="r0", fsynced=True)
    assert span.end == span.start
    assert span.attrs["fsynced"] is True


def test_window_selects_overlapping_spans():
    sim = Simulator()
    tracer = SpanTracer(sim)
    early = tracer.begin("early", "t1")
    tracer.end(early)

    def later():
        yield sim.timeout(5.0)
        span = tracer.begin("late", "t2")
        yield sim.timeout(1.0)
        tracer.end(span)

    sim.run_process(later())
    assert [s.name for s in tracer.window(4.0, 7.0)] == ["late"]
    assert [s.name for s in tracer.window(0.0, 0.1)] == ["early"]


def test_request_trace_id_prefers_wire_field():
    from repro.bftsmart.messages import ClientRequest

    derived = ClientRequest(
        client_id="c", sequence=3, operation=b"", reply_to="c"
    )
    stamped = ClientRequest(
        client_id="c", sequence=3, operation=b"", reply_to="c", trace_id="op:9"
    )
    assert request_trace_id(derived) == "req:c:3"
    assert request_trace_id(stamped) == "op:9"


def test_clear_keeps_aliases():
    sim = Simulator()
    tracer = SpanTracer(sim)
    tracer.alias("a", "b")
    tracer.begin("x", "a")
    tracer.clear()
    assert len(tracer.spans) == 0
    assert tracer.resolve("a") == "b"


# -- exporters ---------------------------------------------------------------


def _sample_tracer():
    sim = Simulator()
    tracer = SpanTracer(sim)
    root = tracer.begin("request", "t1", process="client")

    def flow():
        yield sim.timeout(0.001)
        inner = tracer.begin("consensus", "t1", process="replica-0")
        yield sim.timeout(0.002)
        tracer.end(inner)
        tracer.end(root)

    sim.run_process(flow())
    tracer.begin("open", "t2", process="client")  # deliberately unfinished
    return tracer


def test_chrome_trace_valid_and_loadable(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "trace.json"
    data = write_chrome_trace(str(path), tracer.spans)
    assert validate_chrome_trace(data) == []
    loaded = json.loads(path.read_text())
    events = loaded["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    complete = [e for e in events if e["ph"] == "X"]
    assert {m["args"]["name"] for m in metadata} == {"client", "replica-0"}
    assert len(complete) == 3
    consensus = next(e for e in complete if e["name"] == "consensus")
    assert consensus["ts"] == pytest.approx(1000.0)  # µs
    assert consensus["dur"] == pytest.approx(2000.0)
    still_open = next(e for e in complete if e["name"] == "open")
    assert still_open["args"]["open"] is True


def test_validate_chrome_trace_flags_bad_shapes():
    assert validate_chrome_trace([]) == ["top level is not an object"]
    assert validate_chrome_trace({}) == ["traceEvents is missing or not a list"]
    errors = validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "pid": 1, "name": "a", "ts": 0, "dur": -1}]}
    )
    assert any("negative dur" in e for e in errors)


def test_spans_jsonl_roundtrip(tmp_path):
    tracer = _sample_tracer()
    path = tmp_path / "spans.jsonl"
    count = write_spans_jsonl(str(path), tracer.spans)
    lines = path.read_text().splitlines()
    assert count == len(lines) == len(tracer.spans)
    first = json.loads(lines[0])
    assert first["name"] == "request" and first["trace_id"] == "t1"


# -- end-to-end: one traced SMaRt-SCADA write --------------------------------


@pytest.fixture(scope="module")
def traced_write():
    from repro.core import build_smartscada, make_network
    from repro.core.config import SmartScadaConfig

    sim = Simulator(seed=11)
    tracer = install_tracer(sim)
    net = make_network(sim)
    system = build_smartscada(
        sim, net=net, config=SmartScadaConfig(durability=True)
    )
    system.frontend.add_item("plant.valve", initial=0, writable=True)
    system.start()
    tracer.clear()

    def op():
        result = yield system.hmi.write("plant.valve", 1)
        return result

    result = sim.run_process(op(), until=sim.now + 10)
    return sim, tracer, result


def test_write_produces_causally_linked_span_tree(traced_write):
    sim, tracer, result = traced_write
    assert result.success

    roots = tracer.finished_roots("hmi.write")
    assert len(roots) == 1
    root = roots[0]
    trace_id = root.trace_id
    assert trace_id.startswith("op:")

    spans = tracer.spans_for(trace_id)
    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)

    # The full journey: HMI -> proxy -> BFT client -> replicas -> quorum.
    for name in (
        "hmi.write",
        "proxy.forward",
        "request",
        "request.pending",
        "consensus",
        "consensus.write",
        "consensus.accept",
        "wal.append",
        "request.execute",
        "request.reply_quorum",
    ):
        assert name in by_name, f"missing span {name!r} in trace"

    n = 4
    assert len(by_name["consensus"]) == n  # every replica ran the instance
    assert len(by_name["wal.append"]) == n
    assert all(s.attrs["fsynced"] for s in by_name["wal.append"])
    assert len(by_name["request.execute"]) == n

    # Causal links: every span chains up to the root.
    ids = {span.span_id: span for span in spans}
    for span in spans:
        hops = 0
        cursor = span
        while cursor.parent_id is not None and hops < 20:
            cursor = ids[cursor.parent_id]
            hops += 1
        assert cursor is root

    # Key parent/child edges of the tree.
    (request,) = by_name["request"]
    (proxy,) = by_name["proxy.forward"]
    assert proxy.parent_id == root.span_id
    assert request.parent_id == proxy.span_id
    (quorum,) = by_name["request.reply_quorum"]
    assert quorum.parent_id == request.span_id
    for consensus in by_name["consensus"]:
        writes = [
            s for s in by_name["consensus.write"]
            if s.parent_id == consensus.span_id
        ]
        assert len(writes) == 1

    # Every span closed, in causally consistent order.
    for span in spans:
        assert span.end is not None
        assert span.end >= span.start
    assert root.end == max(s.end for s in spans)


def test_autopsy_phases_sum_to_end_to_end(traced_write):
    sim, tracer, _result = traced_write
    trace_id = pick_trace(tracer, "slowest")
    assert trace_id is not None
    report = autopsy(tracer, trace_id)
    assert report is not None
    total = sum(phase["duration"] for phase in report["phases"])
    assert total == pytest.approx(report["end_to_end"], abs=1e-12)
    assert report["end_to_end"] > 0
    assert report["leader"] is not None
    labels = [phase["phase"] for phase in report["phases"]]
    assert "consensus PROPOSE→WRITE→ACCEPT" in labels
    assert "reply + f+1 quorum" in labels
    text = format_autopsy(report)
    assert "request autopsy" in text and "100.0%" in text


def test_e2e_chrome_export_is_valid(traced_write):
    _sim, tracer, _result = traced_write
    data = chrome_trace(tracer.spans)
    assert validate_chrome_trace(data) == []
    processes = {
        e["args"]["name"] for e in data["traceEvents"] if e["ph"] == "M"
    }
    # HMI, HMI-side proxy client, and all four replicas have tracks.
    assert any(p.startswith("replica-") for p in processes)
    assert any("hmi" in p for p in processes)
