"""Dual-kernel determinism: heap and ring must dispatch identically.

The ring kernel (``repro.sim.fastkernel``) is only a valid drop-in if a
seeded run produces the *same simulation*, not merely similar results:
both kernels must consume scheduling sequence numbers in the same order
and dispatch the identical ``(time, priority, seq)`` schedule. These
tests run a seeded SCADA scenario and a seeded BFT workload under both
kernels and compare the full dispatch schedules (via the kernels'
``_schedule_log`` debug hook) and the executed request streams.
"""

from repro.bftsmart import CounterService, GroupConfig, build_group, build_proxy
from repro.crypto import KeyStore
from repro.net import LanLatency, Network
from repro.sim import RingSimulator, Simulator
from repro.wire import decode, encode

CLIENTS = 2
REQUESTS_EACH = 20


def run_bft(kernel: str, seed: int = 7):
    sim = Simulator(seed=seed, kernel=kernel)
    log = sim._schedule_log = []
    net = Network(sim, latency=LanLatency(rng=sim.rng.stream("net")))
    keystore = KeyStore()
    config = GroupConfig(n=4, f=1, batch_max=8, batch_wait=0.0005)
    replicas = build_group(sim, net, config, CounterService, keystore)
    events = []

    def sender(proxy):
        for _ in range(REQUESTS_EACH):
            events.append(proxy.invoke_ordered(encode(("add", 1))))
            yield sim.timeout(0.002)

    for i in range(CLIENTS):
        proxy = build_proxy(
            sim, net, f"client-{i}", config, keystore, invoke_timeout=30.0
        )
        sim.process(sender(proxy))
    sim.run(until=sim.now + 10)
    assert all(event.ok for event in events)
    return sim, log, replicas


def decided_stream(replica):
    stream = []
    for _cid, value, _timestamp in replica.decision_log:
        if value == b"":
            continue
        for request in decode(value).requests:
            stream.append((request.client_id, request.sequence))
    return stream


def run_scada(kernel: str, seed: int = 5):
    from repro.core import build_smartscada

    sim = Simulator(seed=seed, kernel=kernel)
    log = sim._schedule_log = []
    system = build_smartscada(sim)
    system.frontend.add_item("plant.temperature", initial=20)
    system.frontend.add_item("plant.valve", initial=0, writable=True)
    system.start()
    writes = []

    def scenario():
        for i in range(10):
            system.frontend.inject_update("plant.temperature", 20 + i)
            yield sim.timeout(0.05)
        result = yield system.hmi.write("plant.valve", 1)
        writes.append(result.success)
        yield sim.timeout(0.5)
        return True

    sim.run_process(scenario(), until=30)
    return sim, log, tuple(system.state_digests()), tuple(writes)


def test_kernel_selection_switch():
    assert type(Simulator(kernel="heap")) is Simulator
    assert type(Simulator(kernel="ring")) is RingSimulator
    # Direct construction bypasses the dispatch entirely.
    assert type(RingSimulator()) is RingSimulator


def test_bft_workload_identical_schedule_and_decisions():
    sim_h, log_h, replicas_h = run_bft("heap")
    sim_r, log_r, replicas_r = run_bft("ring")

    # The exact (time, priority, seq) dispatch schedule, event for event.
    assert log_r == log_h
    assert len(log_h) > 1000
    assert sim_r.dispatched == sim_h.dispatched
    assert sim_r.now == sim_h.now

    # Identical executed request stream on every replica.
    streams_h = [decided_stream(r) for r in replicas_h]
    streams_r = [decided_stream(r) for r in replicas_r]
    assert streams_r == streams_h
    assert all(s == streams_h[0] for s in streams_h)
    assert len(streams_h[0]) == CLIENTS * REQUESTS_EACH
    assert [r.service.value for r in replicas_r] == [
        r.service.value for r in replicas_h
    ]


def test_scada_workload_identical_schedule_and_state():
    sim_h, log_h, digests_h, writes_h = run_scada("heap")
    sim_r, log_r, digests_r, writes_r = run_scada("ring")

    assert log_r == log_h
    assert len(log_h) > 100
    assert sim_r.dispatched == sim_h.dispatched
    assert sim_r.now == sim_h.now
    assert digests_r == digests_h
    assert len(set(digests_h)) == 1  # replicas agree within each run too
    assert writes_r == writes_h == (True,)


def run_ids_campaign(kernel: str, seed: int = 3):
    from repro.chaos import Schedule, SwapByzantine, run_campaign
    from repro.chaos.campaign import CampaignConfig

    schedule = Schedule([
        SwapByzantine(at=1.5, index=2, behaviour="falsifying", duration=3.0),
    ])
    return run_campaign(schedule, CampaignConfig(seed=seed, ids=True,
                                                 kernel=kernel))


def test_ids_campaign_identical_detection_stream():
    """Intrusion detection is part of the determinism contract: the same
    seeded compromise produces byte-identical detection streams (times,
    kinds, scores, evidence) under both kernels."""
    report_h = run_ids_campaign("heap")
    report_r = run_ids_campaign("ring")

    assert report_h.fingerprint() == report_r.fingerprint()
    assert report_h.detections == report_r.detections
    assert report_h.detections  # the planted compromise was caught ...
    assert all(d.kind == "byzantine-falsifying" and d.entity == "replica-2"
               for d in report_h.detections)
    assert report_h.ids_score == report_r.ids_score
    assert report_h.ids_score["false_positive_count"] == 0  # ... cleanly
